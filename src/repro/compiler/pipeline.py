"""End-to-end compilation driver: ONNX-like graph -> per-core programs.

``compile_graph`` runs the full flow of Fig. 4: preprocessing and
condensation, CG-level partitioning/mapping under the selected strategy,
core and row assignment, global-memory layout, and OP-level code
generation, returning a :class:`CompiledModel` ready for simulation.
``plan_graph`` stops after the CG level, returning the
:class:`ExecutionPlan` that wide design-space sweeps evaluate with the
fast model.  ``compile_sharded`` is the multi-chip driver: it
pipeline-shards the graph (:func:`repro.compiler.partition.shard_graph`),
compiles every shard with the unchanged single-chip flow, and emits the
explicit :class:`InterChipTransfer` schedule the multi-chip scheduler
(:mod:`repro.sim.multichip`) executes.  See ``docs/ARCHITECTURE.md``
("Two-level compilation" and "Multi-chip sharding") for the flow in
detail.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import ArchConfig
from repro.errors import CompileError
from repro.compiler.codegen.lowering import ProgramGenerator, build_global_image
from repro.compiler.cost import CostModel
from repro.compiler.frontend import CondensedGraph, condense
from repro.compiler.partition import ShardingPlan, shard_graph
from repro.compiler.plan import (
    ExecutionPlan,
    GLOBAL_BASE,
    assign_cores_and_rows,
    layout_global_memory,
)
from repro.compiler.strategies import (
    STRATEGIES,
    build_geometries,
    partition_with_strategy,
)
from repro.graph.graph import ComputationGraph
from repro.isa import ISARegistry, Program, default_registry


@dataclass
class CompiledModel:
    """The compiler's final product.

    ``programs`` maps every core id to its finalized ISA program;
    ``global_image`` is the initial global-memory content (packed weight
    tiles and biases); tensors listed in ``plan.tensor_address`` live in
    global memory at run time (model inputs must be written there before
    simulation, spilled activations and graph outputs appear there after).
    """

    plan: ExecutionPlan
    programs: Dict[int, Program]
    global_image: np.ndarray
    registry: ISARegistry = field(default_factory=default_registry)
    _resident: Optional[Tuple[Dict[int, Program], Dict[int, Program]]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def graph(self) -> ComputationGraph:
        return self.plan.graph

    @property
    def arch(self) -> ArchConfig:
        return self.plan.arch

    def input_address(self, tensor: Optional[str] = None) -> int:
        """Global address of a model input tensor."""
        inputs = self.graph.input_operators
        if tensor is None:
            if len(inputs) != 1:
                raise CompileError("model has multiple inputs; name one")
            tensor = inputs[0].output
        return self.plan.tensor_address[tensor]

    def output_address(self, tensor: Optional[str] = None) -> int:
        """Global address of a graph output tensor."""
        if tensor is None:
            if len(self.graph.outputs) != 1:
                raise CompileError("model has multiple outputs; name one")
            tensor = self.graph.outputs[0]
        resolved = self.plan.cgraph.resolve(tensor)
        return self.plan.tensor_address[resolved]

    def total_instructions(self) -> int:
        return sum(len(p) for p in self.programs.values())

    def supports_resident(self) -> bool:
        """Whether resident program segments can be generated.

        Requires the full CG-level :class:`ExecutionPlan`; plans loaded
        from a compiled artifact (:class:`repro.artifact.ArtifactPlan`)
        keep only the lean serving surface and cannot re-run codegen.
        """
        return getattr(self.plan, "stages", None) is not None

    def resident_segments(self) -> Tuple[Dict[int, Program], Dict[int, Program]]:
        """``(warm, load)`` program maps for resident-weights sessions.

        ``load`` executes each resident core's input-invariant weight
        prologue once; ``warm`` is the per-input activation program.
        Generated lazily from the plan and cached on the model.
        """
        if not self.supports_resident():
            raise CompileError(
                "resident segments need the full execution plan; "
                "artifact-loaded models carry only the serving surface"
            )
        if self._resident is None:
            generator = ProgramGenerator(self.plan, self.registry)
            self._resident = generator.generate_resident()
        return self._resident

    def summary(self) -> str:
        return (
            f"{self.plan.summary()}\n"
            f"  {self.total_instructions()} static instructions across "
            f"{len(self.programs)} cores, "
            f"global image {len(self.global_image) / 1024:.1f} KiB"
        )


def plan_graph(
    graph: ComputationGraph,
    arch: ArchConfig,
    strategy: str = "dp",
    closure_limit: Optional[int] = None,
    cost_model: Optional[CostModel] = None,
) -> ExecutionPlan:
    """Run CG-level compilation only (no code generation).

    Returns the :class:`ExecutionPlan` -- partition stages, clusters,
    replicas -- which the fast analytical model can evaluate directly.
    Wide design-space sweeps use this path; :func:`compile_graph` adds
    OP-level code generation on top for cycle-accurate simulation.
    """
    arch.validate()
    cgraph = condense(graph)
    geometries = build_geometries(cgraph, arch)
    cost_model = cost_model or CostModel(arch)
    partition = partition_with_strategy(
        strategy, cgraph, geometries, arch, cost_model, closure_limit
    )
    stages = assign_cores_and_rows(cgraph, geometries, partition, arch)
    return ExecutionPlan(
        graph=graph,
        cgraph=cgraph,
        arch=arch,
        strategy=strategy,
        geometries=geometries,
        stages=stages,
        partition=partition,
    )


def compile_graph(
    graph: ComputationGraph,
    arch: ArchConfig,
    strategy: str = "dp",
    registry: Optional[ISARegistry] = None,
    closure_limit: Optional[int] = None,
) -> CompiledModel:
    """Compile a computation graph for a CIM architecture.

    ``strategy`` selects the CG-level optimization: ``"generic"``,
    ``"duplication"`` (CIM-MLC-style opportunistic duplication), or
    ``"dp"`` (Algorithm 1).
    """
    if strategy not in STRATEGIES:
        raise CompileError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    plan = plan_graph(graph, arch, strategy, closure_limit)
    layout_global_memory(plan)
    generator = ProgramGenerator(plan, registry)
    programs = generator.generate()
    image = build_global_image(plan)
    return CompiledModel(
        plan=plan,
        programs=programs,
        global_image=image,
        registry=registry or default_registry(),
    )


# ---------------------------------------------------------------------------
# Multi-chip compilation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class InterChipTransfer:
    """One explicit inter-chip transfer instruction.

    The compiler/simulator contract (documented in
    ``docs/ARCHITECTURE.md``, "Multi-chip sharding"): after chip
    ``src_chip`` finishes its shard, ``nbytes`` of tensor ``tensor`` are
    moved from ``src_address`` in the source chip's global memory to
    ``dst_address`` in the destination chip's global memory over the
    :class:`~repro.config.InterChipConfig` link.  Transfers are listed
    in deterministic (src_chip, dst_chip, tensor) order; all transfers
    out of a chip depart when that chip's shard completes, and a chip
    starts only after all its inbound transfers have arrived.
    """

    src_chip: int
    dst_chip: int
    tensor: str
    src_address: int
    dst_address: int
    nbytes: int


@dataclass
class MultiChipModel:
    """The multi-chip compiler product: per-chip programs + transfers.

    Each entry of ``chips`` is a complete single-chip
    :class:`CompiledModel` for one shard; ``transfers`` is the explicit
    inter-chip transfer schedule between them.
    """

    sharding: ShardingPlan
    arch: ArchConfig
    chips: List[CompiledModel]
    transfers: List[InterChipTransfer]

    @property
    def graph(self) -> ComputationGraph:
        """The original (unsharded) model graph."""
        return self.sharding.graph

    @property
    def num_chips(self) -> int:
        return len(self.chips)

    def input_placements(
        self, tensor: Optional[str] = None
    ) -> List[Tuple[int, int]]:
        """(chip, global address) pairs a model input must be written to."""
        inputs = self.graph.input_operators
        if tensor is None:
            if len(inputs) != 1:
                raise CompileError("model has multiple inputs; name one")
            tensor = inputs[0].output
        placements = []
        for shard, compiled in zip(self.sharding.shards, self.chips):
            if tensor in shard.external_inputs:
                placements.append(
                    (shard.index, compiled.plan.tensor_address[tensor])
                )
        if not placements:
            raise CompileError(f"no shard consumes model input {tensor!r}")
        return placements

    def output_placement(self, tensor: Optional[str] = None) -> Tuple[int, int]:
        """(chip, global address) where a model output materialises."""
        if tensor is None:
            if len(self.graph.outputs) != 1:
                raise CompileError("model has multiple outputs; name one")
            tensor = self.graph.outputs[0]
        resolved = self.sharding.cgraph.resolve(tensor)
        for shard, compiled in zip(self.sharding.shards, self.chips):
            if resolved in shard.final_outputs:
                return shard.index, compiled.plan.tensor_address[resolved]
        raise CompileError(f"no shard produces model output {tensor!r}")

    def total_instructions(self) -> int:
        return sum(c.total_instructions() for c in self.chips)

    def interchip_bytes(self) -> int:
        return sum(t.nbytes for t in self.transfers)

    def summary(self) -> str:
        lines = [self.sharding.summary()]
        for chip, compiled in enumerate(self.chips):
            lines.append(f"chip {chip}: {compiled.summary()}")
        lines.append(
            f"  {len(self.transfers)} inter-chip transfers, "
            f"{self.interchip_bytes() / 1024:.1f} KiB over the link"
        )
        return "\n".join(lines)


def compile_sharded(
    graph: ComputationGraph,
    arch: ArchConfig,
    num_chips: int,
    strategy: str = "dp",
    registry: Optional[ISARegistry] = None,
    closure_limit: Optional[int] = None,
    cuts: Optional[Tuple[int, ...]] = None,
) -> MultiChipModel:
    """Compile one model for a pipeline of ``num_chips`` identical chips.

    The graph is sharded at layer cuts of its condensed linearization
    (balanced by weight bytes unless ``cuts`` pins them), each shard is
    compiled with the unchanged single-chip flow against ``arch``, and
    every boundary tensor becomes an explicit :class:`InterChipTransfer`
    from its producer's spill address to its consumer's input address.
    Per-shard capacity/closure checks are the single-chip compiler's
    own; a shard that cannot map raises :class:`CompileError` naming the
    chip.
    """
    plan = shard_graph(graph, num_chips, cuts=cuts)
    chips: List[CompiledModel] = []
    for shard in plan.shards:
        try:
            chips.append(
                compile_graph(
                    shard.graph, arch, strategy,
                    registry=registry, closure_limit=closure_limit,
                )
            )
        except CompileError as exc:
            raise CompileError(
                f"chip {shard.index} (condensed nodes "
                f"{shard.node_indices[0]}..{shard.node_indices[-1]}): {exc}"
            ) from exc

    transfers: List[InterChipTransfer] = []
    for shard in plan.shards:
        for tensor, src in sorted(shard.incoming.items()):
            src_plan = chips[src].plan
            dst_plan = chips[shard.index].plan
            nbytes = graph.tensor(tensor).size_bytes
            transfers.append(
                InterChipTransfer(
                    src_chip=src,
                    dst_chip=shard.index,
                    tensor=tensor,
                    src_address=src_plan.tensor_address[tensor],
                    dst_address=dst_plan.tensor_address[tensor],
                    nbytes=nbytes,
                )
            )
    transfers.sort(key=lambda t: (t.src_chip, t.dst_chip, t.tensor))
    return MultiChipModel(
        sharding=plan, arch=arch, chips=chips, transfers=transfers
    )
