"""End-to-end compilation driver: ONNX-like graph -> per-core programs.

``compile_graph`` runs the full flow of Fig. 4: preprocessing and
condensation, CG-level partitioning/mapping under the selected strategy,
core and row assignment, global-memory layout, and OP-level code
generation, returning a :class:`CompiledModel` ready for simulation.
``plan_graph`` stops after the CG level, returning the
:class:`ExecutionPlan` that wide design-space sweeps evaluate with the
fast model.  See ``docs/ARCHITECTURE.md`` ("Two-level compilation") for
the flow in detail.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.config import ArchConfig
from repro.errors import CompileError
from repro.compiler.codegen.lowering import ProgramGenerator, build_global_image
from repro.compiler.cost import CostModel
from repro.compiler.frontend import CondensedGraph, condense
from repro.compiler.plan import (
    ExecutionPlan,
    GLOBAL_BASE,
    assign_cores_and_rows,
    layout_global_memory,
)
from repro.compiler.strategies import (
    STRATEGIES,
    build_geometries,
    partition_with_strategy,
)
from repro.graph.graph import ComputationGraph
from repro.isa import ISARegistry, Program, default_registry


@dataclass
class CompiledModel:
    """The compiler's final product.

    ``programs`` maps every core id to its finalized ISA program;
    ``global_image`` is the initial global-memory content (packed weight
    tiles and biases); tensors listed in ``plan.tensor_address`` live in
    global memory at run time (model inputs must be written there before
    simulation, spilled activations and graph outputs appear there after).
    """

    plan: ExecutionPlan
    programs: Dict[int, Program]
    global_image: np.ndarray
    registry: ISARegistry = field(default_factory=default_registry)

    @property
    def graph(self) -> ComputationGraph:
        return self.plan.graph

    @property
    def arch(self) -> ArchConfig:
        return self.plan.arch

    def input_address(self, tensor: Optional[str] = None) -> int:
        """Global address of a model input tensor."""
        inputs = self.graph.input_operators
        if tensor is None:
            if len(inputs) != 1:
                raise CompileError("model has multiple inputs; name one")
            tensor = inputs[0].output
        return self.plan.tensor_address[tensor]

    def output_address(self, tensor: Optional[str] = None) -> int:
        """Global address of a graph output tensor."""
        if tensor is None:
            if len(self.graph.outputs) != 1:
                raise CompileError("model has multiple outputs; name one")
            tensor = self.graph.outputs[0]
        resolved = self.plan.cgraph.resolve(tensor)
        return self.plan.tensor_address[resolved]

    def total_instructions(self) -> int:
        return sum(len(p) for p in self.programs.values())

    def summary(self) -> str:
        return (
            f"{self.plan.summary()}\n"
            f"  {self.total_instructions()} static instructions across "
            f"{len(self.programs)} cores, "
            f"global image {len(self.global_image) / 1024:.1f} KiB"
        )


def plan_graph(
    graph: ComputationGraph,
    arch: ArchConfig,
    strategy: str = "dp",
    closure_limit: Optional[int] = None,
    cost_model: Optional[CostModel] = None,
) -> ExecutionPlan:
    """Run CG-level compilation only (no code generation).

    Returns the :class:`ExecutionPlan` -- partition stages, clusters,
    replicas -- which the fast analytical model can evaluate directly.
    Wide design-space sweeps use this path; :func:`compile_graph` adds
    OP-level code generation on top for cycle-accurate simulation.
    """
    arch.validate()
    cgraph = condense(graph)
    geometries = build_geometries(cgraph, arch)
    cost_model = cost_model or CostModel(arch)
    partition = partition_with_strategy(
        strategy, cgraph, geometries, arch, cost_model, closure_limit
    )
    stages = assign_cores_and_rows(cgraph, geometries, partition, arch)
    return ExecutionPlan(
        graph=graph,
        cgraph=cgraph,
        arch=arch,
        strategy=strategy,
        geometries=geometries,
        stages=stages,
        partition=partition,
    )


def compile_graph(
    graph: ComputationGraph,
    arch: ArchConfig,
    strategy: str = "dp",
    registry: Optional[ISARegistry] = None,
    closure_limit: Optional[int] = None,
) -> CompiledModel:
    """Compile a computation graph for a CIM architecture.

    ``strategy`` selects the CG-level optimization: ``"generic"``,
    ``"duplication"`` (CIM-MLC-style opportunistic duplication), or
    ``"dp"`` (Algorithm 1).
    """
    if strategy not in STRATEGIES:
        raise CompileError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    plan = plan_graph(graph, arch, strategy, closure_limit)
    layout_global_memory(plan)
    generator = ProgramGenerator(plan, registry)
    programs = generator.generate()
    image = build_global_image(plan)
    return CompiledModel(
        plan=plan,
        programs=programs,
        global_image=image,
        registry=registry or default_registry(),
    )
