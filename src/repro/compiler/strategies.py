"""The three compilation strategies evaluated in the paper (Sec. IV-B).

- ``generic``: inter-layer pipelining without operator duplication --
  stages are greedy capacity-filling prefixes, one replica per node.
- ``duplication``: the CIM-MLC-style baseline -- the same greedy stages,
  then opportunistic weight duplication into each stage's vacant cores.
- ``dp``: this paper's contribution -- Algorithm 1's dependency-closure
  DP choosing stage boundaries and duplication jointly.
"""

from typing import Callable, Dict, List

from repro.config import ArchConfig
from repro.errors import CompileError
from repro.compiler.cost import CostModel
from repro.compiler.frontend import CondensedGraph
from repro.compiler.geometry import NodeGeometry, build_geometry
from repro.compiler.partition import PartitionResult, dp_partition, greedy_partition

#: Strategy names accepted across the public API.
STRATEGIES = ("generic", "duplication", "dp")


def build_geometries(
    cgraph: CondensedGraph, arch: ArchConfig
) -> Dict[str, NodeGeometry]:
    """Geometry for every condensed node."""
    return {
        node.name: build_geometry(node, arch, cgraph.graph)
        for node in cgraph.nodes
    }


def partition_with_strategy(
    strategy: str,
    cgraph: CondensedGraph,
    geometries: Dict[str, NodeGeometry],
    arch: ArchConfig,
    cost_model: CostModel = None,
    closure_limit: int = None,
) -> PartitionResult:
    """Run the named partitioning strategy."""
    cost_model = cost_model or CostModel(arch)
    if strategy == "generic":
        return greedy_partition(cgraph, geometries, arch, cost_model, duplicate=False)
    if strategy == "duplication":
        return greedy_partition(cgraph, geometries, arch, cost_model, duplicate=True)
    if strategy == "dp":
        kwargs = {}
        if closure_limit is not None:
            kwargs["closure_limit"] = closure_limit
        return dp_partition(
            cgraph, geometries, arch, cost_model, duplicate=True, **kwargs
        )
    raise CompileError(
        f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
    )
