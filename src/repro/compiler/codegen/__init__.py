"""OP-level code generation: layout, lowering, and the global image."""

from repro.compiler.codegen.layout import (
    CoreStageLayout,
    InputBuffer,
    SegmentAllocator,
    build_core_layout,
)
from repro.compiler.codegen.lowering import ProgramGenerator, build_global_image

__all__ = [
    "SegmentAllocator",
    "InputBuffer",
    "CoreStageLayout",
    "build_core_layout",
    "ProgramGenerator",
    "build_global_image",
]
