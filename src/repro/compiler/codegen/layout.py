"""Per-core local-memory layout for one execution stage.

The core's scratchpad is divided into the four architectural segments
(Fig. 3): input buffers, output slab, scratch, and constants.  This module
assigns concrete addresses inside those segments for everything a core's
stage program touches and enforces capacity, raising
:class:`~repro.errors.CapacityError` with a precise message on overflow.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CapacityError
from repro.compiler.frontend import CondensedNode, NodeInput
from repro.compiler.geometry import CoreRole, NodeGeometry
from repro.compiler.plan import ExecutionPlan, NodeMapping, ReplicaAssignment, StagePlan
from repro.graph.ops import OpKind


class SegmentAllocator:
    """Bump allocator over one local-memory segment."""

    def __init__(self, name: str, base: int, size: int, owner: str):
        self.name = name
        self.base = base
        self.size = size
        self.owner = owner
        self.cursor = 0
        self.labels: List[Tuple[str, int, int]] = []

    def take(self, nbytes: int, label: str) -> int:
        nbytes = (nbytes + 3) & ~3  # keep everything word aligned
        if self.cursor + nbytes > self.size:
            raise CapacityError(
                f"{self.owner}: segment {self.name!r} overflow: "
                f"{label} needs {nbytes} B, {self.size - self.cursor} B left "
                f"of {self.size} B"
            )
        address = self.base + self.cursor
        self.labels.append((label, address, nbytes))
        self.cursor += nbytes
        return address


@dataclass
class InputBuffer:
    """A padded row buffer for one input of a node."""

    spec: NodeInput
    in_h: int
    in_w: int
    in_c: int
    pad: int
    p_lo: int
    p_hi: int
    base: int = 0
    staging: int = 0       # receive staging for channel-sliced producers
    fill_value: int = 0
    #: producer mapping when the tensor is produced inside this stage.
    producer: Optional[NodeMapping] = None
    producer_roles: Tuple[CoreRole, ...] = ()
    global_address: int = 0

    @property
    def slot_bytes(self) -> int:
        return (self.in_w + 2 * self.pad) * self.in_c

    @property
    def num_slots(self) -> int:
        return self.p_hi - self.p_lo

    @property
    def total_bytes(self) -> int:
        return self.num_slots * self.slot_bytes

    @property
    def row_bytes(self) -> int:
        """Bytes of one unpadded input row."""
        return self.in_w * self.in_c

    def slot_address(self, padded_row: int) -> int:
        if not self.p_lo <= padded_row < self.p_hi:
            raise CapacityError(
                f"padded row {padded_row} outside buffer "
                f"[{self.p_lo}, {self.p_hi})"
            )
        return self.base + (padded_row - self.p_lo) * self.slot_bytes

    def data_address(self, padded_row: int) -> int:
        """Address of the real (unpadded) data within a slot."""
        return self.slot_address(padded_row) + self.pad * self.in_c

    def needs_prefill(self) -> bool:
        return self.pad > 0


@dataclass
class CoreStageLayout:
    """All addresses a core's program for one stage uses."""

    node: CondensedNode
    geometry: NodeGeometry
    mapping: NodeMapping
    replica: ReplicaAssignment
    role: CoreRole
    inputs: Dict[str, InputBuffer] = field(default_factory=dict)
    out_base: int = 0
    imcol: int = 0
    dw_gather: int = 0
    acc_base: int = 0
    staging: int = 0          # weight-tile staging
    bias_base: int = 0
    resid_gather: int = 0
    pool_gather: int = 0
    pool_acc: int = 0

    @property
    def band(self) -> Tuple[int, int]:
        return self.role.band

    @property
    def band_width(self) -> int:
        return self.role.band[1] - self.role.band[0]

    @property
    def out_row_bytes(self) -> int:
        """Bytes of this core's band for one output row."""
        return self.geometry.out_w * self.band_width

    def out_row_address(self, y: int) -> int:
        y0 = self.replica.rows[0]
        return self.out_base + (y - y0) * self.out_row_bytes

    def main_buffer(self) -> InputBuffer:
        for key, buffer in self.inputs.items():
            if key.startswith("main:"):
                return buffer
        raise CapacityError(f"{self.node.name}: no main input buffer")

    def buffer_for_role(self, role: str) -> Optional[InputBuffer]:
        for key, buffer in self.inputs.items():
            if key.startswith(role + ":"):
                return buffer
        return None


def _input_range(spec: NodeInput, rows: Tuple[int, int], in_h: int) -> Tuple[int, int]:
    """Padded row range an input buffer must hold for output rows ``rows``."""
    y0, y1 = rows
    if spec.mode == "full":
        return 0, in_h
    if spec.mode == "one2one":
        return y0, y1
    return y0 * spec.stride, (y1 - 1) * spec.stride + spec.kernel


def build_core_layout(
    plan: ExecutionPlan,
    stage: StagePlan,
    node: CondensedNode,
    mapping: NodeMapping,
    replica: ReplicaAssignment,
    role: CoreRole,
    core_id: int,
) -> CoreStageLayout:
    """Compute the complete local-memory layout for one (core, stage)."""
    arch = plan.arch
    local = arch.chip.core.local_memory
    seg = local.segment_bytes
    owner = f"core {core_id} / stage {stage.index} / {node.name}"
    seg_in = SegmentAllocator("input", 0 * seg, seg, owner)
    seg_out = SegmentAllocator("output", 1 * seg, seg, owner)
    seg_scratch = SegmentAllocator("scratch", 2 * seg, seg, owner)
    seg_const = SegmentAllocator("const", 3 * seg, seg, owner)

    geometry = mapping.geometry
    layout = CoreStageLayout(
        node=node, geometry=geometry, mapping=mapping, replica=replica, role=role
    )

    graph = plan.graph
    anchor = node.anchor
    for spec in node.inputs:
        info = graph.tensor(spec.tensor)
        if info.is_feature_map:
            in_h, in_w, in_c = info.shape
        else:
            in_h, in_w, in_c = 1, 1, info.shape[0]
        pad = spec.padding if spec.mode == "window" else 0
        p_lo, p_hi = _input_range(spec, replica.rows, in_h + 2 * pad)
        p_hi = min(p_hi, in_h + 2 * pad)
        buffer = InputBuffer(
            spec=spec, in_h=in_h, in_w=in_w, in_c=in_c, pad=pad,
            p_lo=p_lo, p_hi=p_hi,
        )
        buffer.fill_value = -128 if anchor.kind is OpKind.MAXPOOL else 0
        producer_mapping = stage.produces_in_stage(spec.tensor)
        if producer_mapping is not None:
            buffer.producer = producer_mapping
            buffer.producer_roles = tuple(producer_mapping.geometry.core_roles())
            if len(buffer.producer_roles) > 1:
                widest = max(
                    r.band[1] - r.band[0] for r in buffer.producer_roles
                )
                buffer.staging = seg_const.take(
                    producer_mapping.geometry.out_w * widest,
                    f"recv staging {spec.tensor}",
                )
        else:
            buffer.global_address = plan.tensor_address[spec.tensor]
        buffer.base = seg_in.take(buffer.total_bytes, f"input {spec.tensor}")
        layout.inputs[spec.role + ":" + spec.tensor] = buffer

    layout.out_base = seg_out.take(
        replica.num_rows * layout.out_row_bytes, "output slab"
    )

    tile_rows = geometry.tile_rows
    tile_cols = geometry.tile_cols
    if node.is_cim:
        if anchor.kind is OpKind.DWCONV:
            kernel = anchor.attrs["kernel"]
            patch_bytes = kernel * kernel * layout.main_buffer().in_c
            layout.imcol = seg_scratch.take(max(4, patch_bytes), "im2col")
            layout.dw_gather = seg_scratch.take(
                geometry.dw_group * kernel * kernel, "dw gather"
            )
        else:
            layout.imcol = seg_scratch.take(
                max(4, geometry.vec_rows), "im2col"
            )
        slices_owned = len({t.slice_index for t in role.tiles}) or 1
        layout.acc_base = seg_scratch.take(
            slices_owned * tile_cols * 4, "accumulators"
        )
        max_tile = max((t.nbytes for t in role.tiles), default=0)
        if max_tile:
            layout.staging = seg_scratch.take(max_tile, "weight staging")
        if anchor.bias is not None:
            layout.bias_base = seg_const.take(
                4 * layout.band_width, "bias band"
            )
    else:
        if anchor.kind in (OpKind.MAXPOOL, OpKind.AVGPOOL, OpKind.GLOBALAVGPOOL):
            layout.pool_gather = seg_scratch.take(
                max(4, geometry.out_w * geometry.out_c), "pool gather"
            )
            layout.pool_acc = seg_scratch.take(
                4 * max(4, geometry.out_w * geometry.out_c), "pool acc"
            )
    if any(op.kind is OpKind.ADD for op in node.fused) and layout.band_width < geometry.out_c:
        layout.resid_gather = seg_scratch.take(
            geometry.out_w * layout.band_width, "residual gather"
        )
    return layout
