"""OP-level code generation: execution plans -> per-core ISA programs.

For every (core, stage) assignment the emitter produces:

1. **weight load**: stage weight tiles staged from global memory and
   written into macro groups (``MEM_CPY`` + ``CIM_LOAD``), bias bands into
   the constant segment;
2. **row loop** over the replica's output rows: acquisition of the input
   rows each output row needs (``MEM_CPY`` from global memory across stage
   boundaries, ``RECV`` (+scatter) from same-stage producers), the
   compute body (im2col patch assembly + bit-serial ``CIM_MVM`` tiles +
   bias/requant epilogues for CIM nodes; gather/vector sequences for
   pooling and elementwise nodes), the fused elementwise epilogue, and
   emission (``SEND`` to same-stage consumers, spill to global memory);
3. a chip-wide ``BARRIER`` separating stages.

The inner x-loop over output positions is emitted as a real counted ISA
loop with pointer-increment registers, matching the paper's generated-code
example; the row loop is fully unrolled because its body (transfers,
padding) varies per row.
"""

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import CompileError
from repro.compiler.codegen.layout import (
    CoreStageLayout,
    InputBuffer,
    build_core_layout,
)
from repro.compiler.frontend import CondensedNode
from repro.compiler.plan import ExecutionPlan, NodeMapping, StagePlan
from repro.graph.ops import OpKind, Operator
from repro.isa import ISARegistry, Program, ProgramBuilder, SReg, default_registry

# --- fixed register conventions shared by every emitted program -------------
R_ZERO = 0
R_XCNT, R_XBND = 1, 2
R_KR0 = 3            # R3..R9: up to 7 per-kernel-row source pointers
R_IMC, R_OUT = 11, 12
R_T1, R_T2, R_ACC, R_MG, R_SCR = 13, 14, 15, 16, 17
R_T3, R_T4 = 18, 19
R_LEN_PATCH, R_BIAS, R_LEN_FULL, R_LEN_PART = 20, 21, 22, 23
R_GBUF, R_CNT, R_LEN_ROW = 24, 25, 26
R_T5, R_T6 = 27, 28

_MAX_KERNEL = 7  # bounded by the register file convention above


class _Emitter:
    """Wraps a ProgramBuilder with special-register caching."""

    def __init__(self, registry: ISARegistry):
        self.builder = ProgramBuilder(registry)
        self._sregs: Dict[int, int] = {}

    def emit(self, mnemonic: str, **fields):
        return self.builder.emit(mnemonic, **fields)

    def li(self, reg: int, value: int) -> None:
        self.builder.li(reg, value)

    def sreg(self, sreg: SReg, value: int) -> None:
        """Set a special register unless it already holds ``value``."""
        if self._sregs.get(int(sreg)) == value:
            return
        self.li(R_SCR, value & 0xFFFFFFFF)
        self.emit("MV_G2S", rs=R_SCR, imm=int(sreg))
        self._sregs[int(sreg)] = value

    def mem_cpy(self, src: int, dst: int, nbytes: int) -> None:
        """Copy between two static addresses in the unified space."""
        self.li(R_T5, src)
        self.li(R_T6, dst)
        self.li(R_CNT, nbytes)
        self.emit("MEM_CPY", rs=R_T5, rt=R_T6, rd=R_CNT)

    def fill(self, addr: int, count: int, value: int, int32: bool = False) -> None:
        # Uses only T5/T6 so callers' count registers survive the fill.
        self.sreg(SReg.FILL_VALUE, value & 0xFF)
        self.li(R_T5, addr)
        self.li(R_T6, count)
        self.emit("VEC_FILL", rd=R_T5, re=R_T6, funct=4 if int32 else 0)


class ProgramGenerator:
    """Generates per-core programs for a full execution plan."""

    def __init__(self, plan: ExecutionPlan, registry: Optional[ISARegistry] = None):
        self.plan = plan
        self.registry = registry or default_registry()
        self.graph = plan.graph

    # -- public entry ---------------------------------------------------------
    def generate(self) -> Dict[int, Program]:
        assignments = self._assignments()
        return self._emit_programs(assignments, skip_loads=frozenset())

    def resident_cores(self) -> frozenset:
        """Cores whose weight-load prologue is input-invariant *and* separable.

        A core assigned work in more than one stage reuses its macro
        groups, staging buffer and bias segment across stages, so its
        loads must stay inline with the stage body; only single-stage
        cores can hoist them into a run-once load segment.  (Multipass
        cores stream weight tiles inside the compute body regardless --
        for them only the bias copy is hoisted.)
        """
        counts: Dict[int, int] = {}
        for (_, core) in self._assignments():
            counts[core] = counts.get(core, 0) + 1
        return frozenset(core for core, n in counts.items() if n == 1)

    def generate_resident(self) -> Tuple[Dict[int, Program], Dict[int, Program]]:
        """Split programs for resident-weights sessions.

        Returns ``(warm, load)`` program maps.  ``load`` holds, per
        resident core, exactly the ``_emit_loads`` prologue (weight-tile
        ``MEM_CPY`` + ``CIM_LOAD`` passes and bias copies) followed by
        ``HALT`` -- no barriers, since loads touch only the core's own
        buffers and read-only global memory.  ``warm`` is structurally
        identical to :meth:`generate` output except that resident cores
        skip their load prologue; running ``load`` once and then ``warm``
        on persisted core state executes the same data operations in the
        same per-core order as the full program, which is what makes
        resident outputs bit-identical.
        """
        assignments = self._assignments()
        resident = self.resident_cores()
        warm = self._emit_programs(assignments, skip_loads=resident)
        loads: Dict[int, Program] = {}
        for core_id in range(self.plan.arch.num_cores):
            emitter = _Emitter(self.registry)
            if core_id in resident:
                for stage in self.plan.stages:
                    work = assignments.get((stage.index, core_id))
                    if work is None:
                        continue
                    node, mapping, replica, role = work
                    layout = build_core_layout(
                        self.plan, stage, node, mapping, replica, role,
                        core_id,
                    )
                    self._emit_loads(emitter, layout)
            emitter.emit("HALT")
            loads[core_id] = emitter.builder.finalize()
        return warm, loads

    def _emit_programs(self, assignments,
                       skip_loads: frozenset) -> Dict[int, Program]:
        programs: Dict[int, Program] = {}
        for core_id in range(self.plan.arch.num_cores):
            emitter = _Emitter(self.registry)
            for stage in self.plan.stages:
                work = assignments.get((stage.index, core_id))
                if work is not None:
                    self._emit_stage(
                        emitter, stage, core_id, *work,
                        loads=core_id not in skip_loads,
                    )
                emitter.emit("BARRIER")
            emitter.emit("HALT")
            programs[core_id] = emitter.builder.finalize()
        return programs

    def _assignments(self):
        table = {}
        for stage in self.plan.stages:
            for node in stage.nodes:
                mapping = stage.mappings[node.name]
                roles = mapping.geometry.core_roles()
                for replica in mapping.replicas:
                    for position, core in enumerate(replica.cores):
                        table[(stage.index, core)] = (
                            node, mapping, replica, roles[position]
                        )
        return table

    # -- stage emission ----------------------------------------------------------
    def _emit_stage(self, e: _Emitter, stage: StagePlan, core_id: int,
                    node: CondensedNode, mapping: NodeMapping, replica, role,
                    loads: bool = True):
        layout = build_core_layout(
            self.plan, stage, node, mapping, replica, role, core_id
        )
        kernel = node.anchor.attrs.get("kernel", 1)
        if node.is_cim and node.anchor.kind is not OpKind.GEMM and kernel > _MAX_KERNEL:
            raise CompileError(
                f"{node.name}: kernel {kernel} exceeds the register "
                f"convention limit of {_MAX_KERNEL}"
            )
        if loads:
            self._emit_loads(e, layout)
        for buffer in layout.inputs.values():
            if buffer.needs_prefill():
                e.fill(buffer.base, buffer.total_bytes, buffer.fill_value)
        if node.anchor.qparams is not None:
            e.sreg(SReg.QMUL, node.anchor.qparams.qmul)
            e.sreg(SReg.QSHIFT, node.anchor.qparams.qshift)
        acquired = {key: buffer.p_lo for key, buffer in layout.inputs.items()}
        y0, y1 = replica.rows
        for y in range(y0, y1):
            self._emit_acquisition(e, layout, y, acquired)
            self._emit_compute_row(e, layout, y)
            self._emit_row_epilogue(e, layout, y)
            self._emit_outputs(e, stage, layout, y)

    # -- weight / constant loading ----------------------------------------------
    def _emit_loads(self, e: _Emitter, layout: CoreStageLayout) -> None:
        node = layout.node
        if not node.is_cim:
            return
        if layout.geometry.multipass:
            # Weight-streaming operators load tiles inside the compute
            # body (round-robin over macro groups); only constants here.
            if node.anchor.bias is not None:
                c0 = layout.band[0]
                src = self.plan.bias_address[node.name] + 4 * c0
                e.mem_cpy(src, layout.bias_base, 4 * layout.band_width)
            return
        for mg_index, tile in enumerate(layout.role.tiles):
            src = self.plan.tile_address(node.name, tile)
            e.mem_cpy(src, layout.staging, tile.nbytes)
            e.sreg(SReg.MVM_ROWS, tile.rows_used)
            e.sreg(SReg.MVM_COLS, tile.cols_used)
            e.li(R_T5, layout.staging)
            e.li(R_MG, mg_index)
            e.emit("CIM_LOAD", rs=R_T5, rt=R_MG)
        if node.anchor.bias is not None:
            c0 = layout.band[0]
            src = self.plan.bias_address[node.name] + 4 * c0
            e.mem_cpy(src, layout.bias_base, 4 * layout.band_width)

    # -- input acquisition ---------------------------------------------------------
    def _rows_hi_for_output(self, buffer: InputBuffer, y: int) -> int:
        spec = buffer.spec
        if spec.mode == "full":
            return buffer.p_hi
        if spec.mode == "one2one":
            return y + 1
        return y * spec.stride + spec.kernel

    def _emit_acquisition(self, e: _Emitter, layout: CoreStageLayout, y: int,
                          acquired: Dict[str, int]) -> None:
        for key, buffer in layout.inputs.items():
            hi = min(self._rows_hi_for_output(buffer, y), buffer.p_hi)
            for p in range(acquired[key], hi):
                r = p - buffer.pad
                if 0 <= r < buffer.in_h:
                    self._emit_fetch_row(e, buffer, p, r)
            acquired[key] = max(acquired[key], hi)

    def _emit_fetch_row(self, e: _Emitter, buffer: InputBuffer, p: int, r: int) -> None:
        dst = buffer.data_address(p)
        if buffer.producer is None:
            src = buffer.global_address + r * buffer.row_bytes
            e.mem_cpy(src, dst, buffer.row_bytes)
            return
        producer = buffer.producer
        prod_replica = producer.replica_for_row(r)
        roles = buffer.producer_roles
        if len(roles) == 1:
            e.li(R_T5, dst)
            e.li(R_T6, prod_replica.cores[0])
            e.li(R_CNT, buffer.row_bytes)
            e.emit("RECV", rs=R_T5, rt=R_T6, rd=R_CNT)
            return
        out_w = producer.geometry.out_w
        for position, core in enumerate(prod_replica.cores):
            band = roles[position].band
            width = band[1] - band[0]
            nbytes = out_w * width
            e.li(R_T5, buffer.staging)
            e.li(R_T6, core)
            e.li(R_CNT, nbytes)
            e.emit("RECV", rs=R_T5, rt=R_T6, rd=R_CNT)
            e.sreg(SReg.CHUNK, width)
            e.sreg(SReg.STRIDE, buffer.in_c)
            e.li(R_T5, buffer.staging)
            e.li(R_T6, dst + band[0])
            e.li(R_CNT, out_w)
            e.emit("MEM_SCATTER", rs=R_T5, rt=R_T6, rd=R_CNT)

    # -- compute -------------------------------------------------------------------
    def _emit_compute_row(self, e: _Emitter, layout: CoreStageLayout, y: int) -> None:
        kind = layout.node.anchor.kind
        if kind in (OpKind.CONV, OpKind.GEMM):
            self._compute_conv_row(e, layout, y)
        elif kind is OpKind.DWCONV:
            self._compute_dwconv_row(e, layout, y)
        elif kind in (OpKind.MAXPOOL, OpKind.AVGPOOL):
            self._compute_pool_row(e, layout, y)
        elif kind is OpKind.GLOBALAVGPOOL:
            self._compute_gap(e, layout)
        elif kind is OpKind.MUL_CHANNEL:
            self._compute_cmul_row(e, layout, y)
        elif kind in (OpKind.RELU, OpKind.RELU6, OpKind.SILU, OpKind.SIGMOID,
                      OpKind.ADD):
            self._compute_eltwise_row(e, layout, y)
        else:  # pragma: no cover
            raise CompileError(f"no lowering for anchor kind {kind}")

    def _slice_groups(self, layout: CoreStageLayout) -> List[Tuple[int, list]]:
        """Owned tiles grouped by column slice, with local slice ordinals."""
        groups: Dict[int, list] = {}
        for mg_index, tile in enumerate(layout.role.tiles):
            groups.setdefault(tile.slice_index, []).append((mg_index, tile))
        return [(s, groups[s]) for s in sorted(groups)]

    def _x_loop(self, e: _Emitter, layout: CoreStageLayout, body) -> None:
        """Emit the counted loop over output positions of one row."""
        out_w = layout.geometry.out_w
        if out_w == 1:
            body(single=True)
            return
        e.li(R_XCNT, 0)
        e.li(R_XBND, out_w)
        head = e.builder.program.new_label("xloop")
        e.builder.program.place_label(head)
        body(single=False)
        e.emit("SC_ADDI", rs=R_XCNT, rt=R_XCNT, imm=1)
        e.emit("BLT", rs=R_XCNT, rt=R_XBND, target=head)

    def _epilogue_slices(self, e: _Emitter, layout: CoreStageLayout,
                         groups) -> None:
        """Per-position bias add + requantisation for every owned slice."""
        c0 = layout.band[0]
        tile_cols = layout.geometry.tile_cols
        for local, (s, tiles) in enumerate(groups):
            first_tile = tiles[0][1]
            cols = first_tile.cols_used
            len_reg = R_LEN_FULL if cols == tile_cols else R_LEN_PART
            acc_off = local * tile_cols * 4
            e.emit("SC_ADDIW", rs=R_ACC, rt=R_T1, offset=acc_off)
            if layout.bias_base:
                bias_off = (first_tile.col_lo - c0) * 4
                e.emit("SC_ADDIW", rs=R_BIAS, rt=R_T2, offset=bias_off)
                e.emit("VEC_ADD32", rs=R_T1, rt=R_T2, rd=R_T1, re=len_reg)
            out_off = first_tile.col_lo - c0
            e.emit("SC_ADDIW", rs=R_OUT, rt=R_T2, offset=out_off)
            e.emit("VEC_QNT", rs=R_T1, rd=R_T2, re=len_reg)

    def _prep_length_regs(self, e: _Emitter, layout: CoreStageLayout) -> None:
        groups = self._slice_groups(layout)
        tile_cols = layout.geometry.tile_cols
        e.li(R_LEN_FULL, tile_cols)
        partial = [
            tiles[0][1].cols_used
            for _, tiles in groups
            if tiles[0][1].cols_used != tile_cols
        ]
        if partial:
            e.li(R_LEN_PART, partial[0])

    def _compute_conv_row(self, e: _Emitter, layout: CoreStageLayout, y: int) -> None:
        node = layout.node
        geometry = layout.geometry
        main = layout.main_buffer()
        is_gemm = node.anchor.kind is OpKind.GEMM
        kernel = 1 if is_gemm else node.anchor.attrs["kernel"]
        stride = 1 if is_gemm else node.anchor.attrs["stride"]
        groups = self._slice_groups(layout)
        tile_rows = geometry.tile_rows
        in_c = main.in_c

        # loop-invariant registers
        self._prep_length_regs(e, layout)
        if is_gemm:
            e.li(R_IMC, main.base)  # the flat vector is the buffer itself
        else:
            e.li(R_IMC, layout.imcol)
            e.li(R_LEN_PATCH, kernel * in_c)
            for kr in range(kernel):
                e.li(R_KR0 + kr, main.slot_address(y * stride + kr))
        e.li(R_OUT, layout.out_row_address(y))
        e.li(R_ACC, layout.acc_base)
        if layout.bias_base:
            e.li(R_BIAS, layout.bias_base)

        def body(single: bool) -> None:
            if not is_gemm:
                for kr in range(kernel):
                    e.emit("SC_ADDIW", rs=R_IMC, rt=R_T1,
                           offset=kr * kernel * in_c)
                    e.emit(
                        "MEM_CPY", rs=R_KR0 + kr, rt=R_T1, rd=R_LEN_PATCH
                    )
            num_mgs = self.plan.arch.mgs_per_core
            if geometry.multipass:
                vec_base = main.base if is_gemm else layout.imcol
                self._multipass_tiles(e, layout, groups, vec_base)
            else:
                for local, (s, tiles) in enumerate(groups):
                    acc_off = local * geometry.tile_cols * 4
                    for mg_index, tile in tiles:
                        slot = mg_index % num_mgs
                        e.emit("SC_ADDIW", rs=R_IMC, rt=R_T1,
                               offset=tile.vec_lo)
                        e.emit("SC_ADDIW", rs=R_ACC, rt=R_T2,
                               offset=acc_off)
                        e.li(R_MG, slot)
                        e.emit(
                            "CIM_MVM", rs=R_T1, rt=R_MG, re=R_T2,
                            flags=0 if tile.tile_index == 0 else 1,
                        )
            self._epilogue_slices(e, layout, groups)
            if not single:
                for kr in range(kernel):
                    e.emit("SC_ADDIW", rs=R_KR0 + kr, rt=R_KR0 + kr,
                           offset=stride * in_c)
                e.emit("SC_ADDIW", rs=R_OUT, rt=R_OUT,
                       offset=layout.band_width)

        self._x_loop(e, layout, body)

    # -- weight streaming (multipass) ------------------------------------------
    #: Longest SC_ADDIW chain allowed for one pointer step; steps needing
    #: more stay unrolled.
    _MAX_STEP_ADDS = 3
    #: Minimum uniform passes worth a counted loop (below the block
    #: engine's batch threshold a loop only adds branch overhead).
    _MIN_PASS_RUN = 4

    def _step_chunks(self, step: int) -> Optional[List[int]]:
        """Split a pointer step into SC_ADDIW-sized signed immediates."""
        chunks: List[int] = []
        sign = 1 if step >= 0 else -1
        rest = abs(step)
        while rest:
            c = min(rest, 32767)
            chunks.append(sign * c)
            rest -= c
            if len(chunks) > self._MAX_STEP_ADDS:
                return None
        return chunks

    def _uniform_run(self, tiles, addrs, i: int):
        """Maximal run of identical-shape accumulating passes from ``i``.

        Returns ``(length, addr_step, vec_step)`` when the run is loopable
        (every pass accumulates, shapes match, and both the global tile
        address and the vector offset advance by a constant encodable
        stride), else ``None``.
        """
        t0 = tiles[i][1]
        if t0.tile_index == 0 or i + 1 >= len(tiles):
            return None
        d_addr = addrs[i + 1] - addrs[i]
        d_vec = tiles[i + 1][1].vec_lo - t0.vec_lo
        length = 1
        while i + length < len(tiles):
            tile = tiles[i + length][1]
            prev = tiles[i + length - 1][1]
            if (tile.rows_used != t0.rows_used
                    or tile.cols_used != t0.cols_used
                    or addrs[i + length] - addrs[i + length - 1] != d_addr
                    or tile.vec_lo - prev.vec_lo != d_vec):
                break
            length += 1
        if length < self._MIN_PASS_RUN:
            return None
        if self._step_chunks(d_addr) is None or self._step_chunks(d_vec) is None:
            return None
        return length, d_addr, d_vec

    def _emit_one_pass(self, e: _Emitter, layout: CoreStageLayout,
                       mg_index: int, tile, addr: int, acc_off: int) -> None:
        """One unrolled weight-streaming pass: stage, load, multiply."""
        slot = mg_index % self.plan.arch.mgs_per_core
        e.mem_cpy(addr, layout.staging, tile.nbytes)
        e.sreg(SReg.MVM_ROWS, tile.rows_used)
        e.sreg(SReg.MVM_COLS, tile.cols_used)
        e.li(R_T5, layout.staging)
        e.li(R_MG, slot)
        e.emit("CIM_LOAD", rs=R_T5, rt=R_MG)
        e.emit("SC_ADDIW", rs=R_IMC, rt=R_T1, offset=tile.vec_lo)
        e.emit("SC_ADDIW", rs=R_ACC, rt=R_T2, offset=acc_off)
        e.li(R_MG, slot)
        e.emit(
            "CIM_MVM", rs=R_T1, rt=R_MG, re=R_T2,
            flags=0 if tile.tile_index == 0 else 1,
        )

    def _multipass_tiles(self, e: _Emitter, layout: CoreStageLayout,
                         groups, vec_base: int) -> None:
        """Weight-streaming passes over each owned column slice.

        Maximal runs of uniform accumulating passes -- same tile shape,
        constant global-address and vector strides -- are emitted as one
        counted ISA loop per run, so the block engine can replay them
        iteration-major (including the per-pass NoC transfer).  The
        leading ``flags=0`` pass and any irregular tail stay unrolled.
        """
        geometry = layout.geometry
        name = layout.node.name
        for local, (s, tiles) in enumerate(groups):
            acc_off = local * geometry.tile_cols * 4
            addrs = [self.plan.tile_address(name, t) for _, t in tiles]
            i = 0
            while i < len(tiles):
                run = self._uniform_run(tiles, addrs, i)
                if run is None:
                    mg_index, tile = tiles[i]
                    self._emit_one_pass(
                        e, layout, mg_index, tile, addrs[i], acc_off
                    )
                    i += 1
                    continue
                length, d_addr, d_vec = run
                mg_index, t0 = tiles[i]
                slot = mg_index % self.plan.arch.mgs_per_core
                e.sreg(SReg.MVM_ROWS, t0.rows_used)
                e.sreg(SReg.MVM_COLS, t0.cols_used)
                e.li(R_T3, addrs[i])                # stepping tile source
                e.li(R_T4, vec_base + t0.vec_lo)    # stepping vector ptr
                e.li(R_T5, layout.staging)
                e.li(R_CNT, t0.nbytes)
                e.emit("SC_ADDIW", rs=R_ACC, rt=R_T2, offset=acc_off)
                e.li(R_MG, slot)
                e.li(R_XCNT, 0)
                e.li(R_XBND, length)
                head = e.builder.program.new_label("wpass")
                e.builder.program.place_label(head)
                e.emit("MEM_CPY", rs=R_T3, rt=R_T5, rd=R_CNT)
                e.emit("CIM_LOAD", rs=R_T5, rt=R_MG)
                e.emit("CIM_MVM", rs=R_T4, rt=R_MG, re=R_T2, flags=1)
                for c in self._step_chunks(d_addr):
                    e.emit("SC_ADDIW", rs=R_T3, rt=R_T3, offset=c)
                for c in self._step_chunks(d_vec):
                    e.emit("SC_ADDIW", rs=R_T4, rt=R_T4, offset=c)
                e.emit("SC_ADDI", rs=R_XCNT, rt=R_XCNT, imm=1)
                e.emit("BLT", rs=R_XCNT, rt=R_XBND, target=head)
                i += length

    def _compute_dwconv_row(self, e: _Emitter, layout: CoreStageLayout, y: int) -> None:
        node = layout.node
        geometry = layout.geometry
        main = layout.main_buffer()
        kernel = node.anchor.attrs["kernel"]
        stride = node.anchor.attrs["stride"]
        in_c = main.in_c
        groups = self._slice_groups(layout)
        c0 = layout.band[0]

        e.li(R_IMC, layout.imcol)
        e.li(R_GBUF, layout.dw_gather)
        e.li(R_LEN_PATCH, in_c)
        e.li(R_CNT, kernel * kernel)
        for kr in range(kernel):
            e.li(R_KR0 + kr, main.slot_address(y * stride + kr))
        e.li(R_OUT, layout.out_row_address(y))
        e.li(R_ACC, layout.acc_base)
        if layout.bias_base:
            e.li(R_BIAS, layout.bias_base)
        e.sreg(SReg.STRIDE, in_c)

        def body(single: bool) -> None:
            for kr in range(kernel):
                for kc in range(kernel):
                    e.emit("SC_ADDIW", rs=R_KR0 + kr, rt=R_T1,
                           offset=kc * in_c)
                    e.emit("SC_ADDIW", rs=R_IMC, rt=R_T2,
                           offset=(kr * kernel + kc) * in_c)
                    e.emit("MEM_CPY", rs=R_T1, rt=R_T2, rd=R_LEN_PATCH)
            for mg_index, tile in enumerate(layout.role.tiles):
                width = tile.channel_hi - tile.channel_lo
                e.sreg(SReg.CHUNK, width)
                e.emit("SC_ADDIW", rs=R_IMC, rt=R_T1,
                       offset=tile.channel_lo)
                e.emit("MEM_GATHER", rs=R_T1, rt=R_GBUF, rd=R_CNT)
                e.li(R_MG, mg_index)
                e.emit("CIM_MVM", rs=R_GBUF, rt=R_MG, re=R_ACC, flags=0)
                # epilogue for this tile's channel group
                e.li(R_T3, width)
                if layout.bias_base:
                    e.emit("SC_ADDIW", rs=R_BIAS, rt=R_T2,
                           offset=(tile.channel_lo - c0) * 4)
                    e.emit("VEC_ADD32", rs=R_ACC, rt=R_T2, rd=R_ACC, re=R_T3)
                e.emit("SC_ADDIW", rs=R_OUT, rt=R_T2,
                       offset=tile.channel_lo - c0)
                e.emit("VEC_QNT", rs=R_ACC, rd=R_T2, re=R_T3)
            if not single:
                for kr in range(kernel):
                    e.emit("SC_ADDIW", rs=R_KR0 + kr, rt=R_KR0 + kr,
                           offset=stride * in_c)
                e.emit("SC_ADDIW", rs=R_OUT, rt=R_OUT,
                       offset=layout.band_width)

        self._x_loop(e, layout, body)

    def _compute_pool_row(self, e: _Emitter, layout: CoreStageLayout, y: int) -> None:
        node = layout.node
        geometry = layout.geometry
        main = layout.main_buffer()
        kernel = node.anchor.attrs["kernel"]
        stride = node.anchor.attrs["stride"]
        channels = geometry.out_c
        out_w = geometry.out_w
        is_max = node.anchor.kind is OpKind.MAXPOOL
        row_len = out_w * channels
        e.li(R_LEN_ROW, row_len)
        e.li(R_OUT, layout.out_row_address(y))
        e.li(R_GBUF, layout.pool_gather)
        e.li(R_CNT, out_w)
        e.sreg(SReg.CHUNK, channels)
        e.sreg(SReg.STRIDE, stride * channels)
        if is_max:
            e.fill(layout.out_row_address(y), row_len, -128)
            e.li(R_OUT, layout.out_row_address(y))
        else:
            e.fill(layout.pool_acc, row_len, 0, int32=True)
            e.li(R_T4, layout.pool_acc)
        for ky in range(kernel):
            for kx in range(kernel):
                src = main.slot_address(y * stride + ky) + kx * channels
                e.li(R_T1, src)
                e.emit("MEM_GATHER", rs=R_T1, rt=R_GBUF, rd=R_CNT)
                if is_max:
                    e.emit("VEC_MAX", rs=R_GBUF, rt=R_OUT, rd=R_OUT,
                           re=R_LEN_ROW)
                else:
                    e.emit("VEC_ACC32", rs=R_GBUF, rd=R_T4, re=R_LEN_ROW)
        if not is_max:
            e.emit("VEC_QNT", rs=R_T4, rd=R_OUT, re=R_LEN_ROW)

    def _compute_gap(self, e: _Emitter, layout: CoreStageLayout) -> None:
        main = layout.main_buffer()
        channels = layout.geometry.out_c
        e.fill(layout.pool_acc, channels, 0, int32=True)
        e.li(R_T4, layout.pool_acc)
        e.li(R_LEN_ROW, channels)
        for r in range(main.in_h):
            e.li(R_T1, main.slot_address(r + main.pad) if False else main.data_address(r + main.pad))
            if main.in_w == 1:
                e.emit("VEC_ACC32", rs=R_T1, rd=R_T4, re=R_LEN_ROW)
                continue
            e.li(R_XCNT, 0)
            e.li(R_XBND, main.in_w)
            head = e.builder.program.new_label("gap")
            e.builder.program.place_label(head)
            e.emit("VEC_ACC32", rs=R_T1, rd=R_T4, re=R_LEN_ROW)
            e.emit("SC_ADDIW", rs=R_T1, rt=R_T1, offset=channels)
            e.emit("SC_ADDI", rs=R_XCNT, rt=R_XCNT, imm=1)
            e.emit("BLT", rs=R_XCNT, rt=R_XBND, target=head)
        e.li(R_OUT, layout.out_row_address(0))
        e.emit("VEC_QNT", rs=R_T4, rd=R_OUT, re=R_LEN_ROW)

    def _compute_cmul_row(self, e: _Emitter, layout: CoreStageLayout, y: int) -> None:
        main = layout.main_buffer()
        scale = layout.buffer_for_role("scale")
        if scale is None:
            raise CompileError(f"{layout.node.name}: missing scale input")
        channels = layout.geometry.out_c
        row_len = layout.geometry.out_w * channels
        e.sreg(SReg.CHANNEL_LEN, channels)
        e.li(R_T1, main.data_address(y))
        e.li(R_T2, scale.data_address(0))
        e.li(R_OUT, layout.out_row_address(y))
        e.li(R_LEN_ROW, row_len)
        e.emit("VEC_CMUL", rs=R_T1, rt=R_T2, rd=R_OUT, re=R_LEN_ROW)

    def _compute_eltwise_row(self, e: _Emitter, layout: CoreStageLayout, y: int) -> None:
        node = layout.node
        main = layout.main_buffer()
        row_len = layout.geometry.out_w * layout.geometry.out_c
        e.li(R_T1, main.data_address(y))
        e.li(R_OUT, layout.out_row_address(y))
        e.li(R_LEN_ROW, row_len)
        kind = node.anchor.kind
        if kind is OpKind.ADD:
            resid = layout.buffer_for_role("residual")
            if resid is None:
                raise CompileError(f"{node.name}: missing residual input")
            e.li(R_T2, resid.data_address(y))
            e.emit("VEC_ADD", rs=R_T1, rt=R_T2, rd=R_OUT, re=R_LEN_ROW)
        else:
            mnemonic = {
                OpKind.RELU: "VEC_RELU",
                OpKind.RELU6: "VEC_RELU6",
                OpKind.SILU: "VEC_SILU",
                OpKind.SIGMOID: "VEC_SIGMOID",
            }[kind]
            e.emit(mnemonic, rs=R_T1, rd=R_OUT, re=R_LEN_ROW)

    # -- fused epilogue ------------------------------------------------------------
    def _emit_row_epilogue(self, e: _Emitter, layout: CoreStageLayout, y: int) -> None:
        node = layout.node
        if not node.fused:
            return
        row_addr = layout.out_row_address(y)
        row_len = layout.out_row_bytes
        e.li(R_T1, row_addr)
        e.li(R_LEN_ROW, row_len)
        residual_iter = iter(
            buf for key, buf in layout.inputs.items()
            if key.startswith("residual:")
        )
        for op in node.fused:
            if op.kind is OpKind.ADD:
                resid = next(residual_iter, None)
                if resid is None:
                    raise CompileError(f"{node.name}: fused add lacks residual")
                self._emit_residual_add(e, layout, resid, y)
            elif op.kind is OpKind.RELU:
                e.emit("VEC_RELU", rs=R_T1, rd=R_T1, re=R_LEN_ROW)
            elif op.kind is OpKind.RELU6:
                e.emit("VEC_RELU6", rs=R_T1, rd=R_T1, re=R_LEN_ROW)
            elif op.kind is OpKind.SILU:
                e.emit("VEC_SILU", rs=R_T1, rd=R_T1, re=R_LEN_ROW)
            elif op.kind is OpKind.SIGMOID:
                e.emit("VEC_SIGMOID", rs=R_T1, rd=R_T1, re=R_LEN_ROW)
            else:  # pragma: no cover
                raise CompileError(f"cannot fuse {op.kind} into an epilogue")

    def _emit_residual_add(self, e: _Emitter, layout: CoreStageLayout,
                           resid: InputBuffer, y: int) -> None:
        geometry = layout.geometry
        band = layout.band
        if layout.band_width == geometry.out_c:
            e.li(R_T2, resid.data_address(y))
            e.emit("VEC_ADD", rs=R_T1, rt=R_T2, rd=R_T1, re=R_LEN_ROW)
            return
        # channel-banded core: gather its channels from the NHWC residual row
        e.sreg(SReg.CHUNK, layout.band_width)
        e.sreg(SReg.STRIDE, geometry.out_c)
        e.li(R_T2, resid.data_address(y) + band[0])
        e.li(R_T4, layout.resid_gather)
        e.li(R_CNT, geometry.out_w)
        e.emit("MEM_GATHER", rs=R_T2, rt=R_T4, rd=R_CNT)
        e.emit("VEC_ADD", rs=R_T1, rt=R_T4, rd=R_T1, re=R_LEN_ROW)

    # -- output emission -------------------------------------------------------------
    def _consumer_cores_for_row(self, stage: StagePlan, node: CondensedNode,
                                y: int) -> List[int]:
        """Same-stage consumer cores needing output row ``y``, in canonical
        (node, input, replica, core) order."""
        cores: List[int] = []
        out_h = self.plan.geometries[node.name].out_h
        for consumer in stage.nodes:
            if consumer.name == node.name:
                continue
            for spec in consumer.inputs:
                if spec.tensor != node.output:
                    continue
                cmap = stage.mappings[consumer.name]
                for replica in cmap.replicas:
                    needed = spec.rows_needed(
                        replica.rows[0], replica.rows[1], out_h
                    )
                    if y in needed:
                        cores.extend(replica.cores)
        return cores

    def _emit_outputs(self, e: _Emitter, stage: StagePlan,
                      layout: CoreStageLayout, y: int) -> None:
        node = layout.node
        row_addr = layout.out_row_address(y)
        nbytes = layout.out_row_bytes
        for core in self._consumer_cores_for_row(stage, node, y):
            e.li(R_T5, row_addr)
            e.li(R_T6, core)
            e.li(R_CNT, nbytes)
            e.emit("SEND", rs=R_T5, rt=R_T6, rd=R_CNT)
        if stage.spill[node.name]:
            geometry = layout.geometry
            out_row_bytes = geometry.out_w * geometry.out_c
            dst = self.plan.tensor_address[node.output] + y * out_row_bytes
            if layout.band_width == geometry.out_c:
                e.mem_cpy(row_addr, dst, nbytes)
            else:
                e.sreg(SReg.CHUNK, layout.band_width)
                e.sreg(SReg.STRIDE, geometry.out_c)
                e.li(R_T5, row_addr)
                e.li(R_T6, dst + layout.band[0])
                e.li(R_CNT, geometry.out_w)
                e.emit("MEM_SCATTER", rs=R_T5, rt=R_T6, rd=R_CNT)


def build_global_image(plan: ExecutionPlan) -> np.ndarray:
    """Materialise the initial global-memory contents (weights, biases)."""
    from repro.compiler.plan import GLOBAL_BASE

    image = np.zeros(plan.global_bytes, dtype=np.uint8)

    def write(address: int, data: np.ndarray) -> None:
        offset = address - GLOBAL_BASE
        raw = data.astype(data.dtype, copy=False).tobytes()
        image[offset:offset + len(raw)] = np.frombuffer(raw, dtype=np.uint8)

    for stage in plan.stages:
        for node in stage.nodes:
            geometry = plan.geometries[node.name]
            if not node.is_cim:
                continue
            for tile in geometry.pack_tiles():
                write(plan.tile_address(node.name, tile), tile.data)
            bias = node.anchor.bias
            if bias is not None:
                write(plan.bias_address[node.name], bias.astype(np.int32))
    return image
