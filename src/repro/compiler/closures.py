"""Dependency-closure enumeration with bitmask state compression (Alg. 1).

A *dependency closure* is "a self-contained set of operators whose
dependencies are fully enclosed within the set" -- an order ideal (downward
closed set) of the condensed-graph DAG.  Closures are encoded as Python
integers used as bitmasks (bit i set = node i in the closure), which is the
paper's state-compression optimisation: candidate partitions are derived by
set *difference* of two nested closures, and the subset test is a single
``&`` operation.
"""

from collections import deque
from typing import List, Sequence, Set

from repro.errors import CompileError
from repro.utils.bits import popcount

#: Default cap on enumerated closures before falling back to prefixes.
DEFAULT_CLOSURE_LIMIT = 2048


def closure_masks(
    deps: Sequence[Set[int]], limit: int = DEFAULT_CLOSURE_LIMIT
) -> List[int]:
    """Enumerate every dependency closure of a DAG, as bitmasks.

    ``deps[i]`` is the set of direct predecessors of node ``i`` (indices
    must be topologically ordered: every dependency has a smaller index).
    The result is sorted by population count then value, so dynamic
    programming can scan it in construction order.  If the DAG has more
    than ``limit`` closures, the enumeration falls back to the ``n + 1``
    prefix closures of the linearization (always valid, possibly
    suboptimal) -- wide graphs degrade gracefully instead of exploding.
    """
    n = len(deps)
    for i, d in enumerate(deps):
        if any(j >= i for j in d):
            raise CompileError("deps must follow a topological ordering")
    dep_masks = [0] * n
    for i, d in enumerate(deps):
        for j in d:
            dep_masks[i] |= 1 << j

    seen = {0}
    queue = deque([0])
    overflow = False
    while queue:
        mask = queue.popleft()
        for i in range(n):
            bit = 1 << i
            if mask & bit:
                continue
            if dep_masks[i] & ~mask:
                continue  # some dependency of i is outside the closure
            extended = mask | bit
            if extended not in seen:
                seen.add(extended)
                queue.append(extended)
                if len(seen) > limit:
                    overflow = True
                    queue.clear()
                    break
        if overflow:
            break

    if overflow:
        return prefix_masks(n)
    return sorted(seen, key=lambda m: (popcount(m), m))


def prefix_masks(n: int) -> List[int]:
    """The prefix closures of a topological linearization."""
    return [(1 << k) - 1 for k in range(n + 1)]


def mask_nodes(mask: int) -> List[int]:
    """Node indices contained in a bitmask, ascending."""
    nodes = []
    i = 0
    while mask:
        if mask & 1:
            nodes.append(i)
        mask >>= 1
        i += 1
    return nodes


def is_subset(inner: int, outer: int) -> bool:
    """True when closure ``inner`` is contained in closure ``outer``."""
    return inner & outer == inner
