"""Core-mapping optimisation with operator (weight) duplication.

Given the nodes of one partition stage, :func:`optimal_mapping` decides how
many *replicas* each node gets (the paper's weight duplication across
clusters of cores): starting from the minimum feasible mapping, leftover
cores are granted to whichever node currently bounds the stage pipeline,
as long as the cost model says the extra replica actually helps --
"strategically duplicating operator weights across clusters of cores when
deemed beneficial by the cost estimation model".
"""

from typing import Dict, List, Optional, Tuple

from repro.config import ArchConfig
from repro.compiler.cost import CostModel, StageEstimate
from repro.compiler.geometry import NodeGeometry


def minimum_cores(geoms: List[NodeGeometry]) -> int:
    """Cores needed by one replica of every node in the stage."""
    return sum(g.cores_min for g in geoms)


def optimal_mapping(
    geoms: List[NodeGeometry],
    arch: ArchConfig,
    cost_model: CostModel,
    duplicate: bool = True,
    spill: Optional[Dict[str, bool]] = None,
) -> Optional[Tuple[Dict[str, int], StageEstimate]]:
    """Choose replica counts for a stage; ``None`` when the stage cannot fit.

    With ``duplicate=False`` the mapping is the generic single-replica
    placement (used by the baseline strategies).
    """
    total_cores = arch.num_cores
    base = minimum_cores(geoms)
    if base > total_cores:
        return None
    replicas: Dict[str, int] = {g.node.name: 1 for g in geoms}
    estimate = cost_model.estimate_stage(geoms, replicas, spill)
    if not duplicate:
        return replicas, estimate

    cores_used = base
    blocked = set()
    # Greedy duplication: relieve the pipeline bottleneck while it helps.
    for _ in range(4 * total_cores):
        candidates = [
            (cost.latency, geom)
            for cost, geom in zip(estimate.node_costs, geoms)
            if geom.node.name not in blocked
            and replicas[geom.node.name] < geom.max_replicas
            and cores_used + geom.cores_min <= total_cores
        ]
        if not candidates:
            break
        candidates.sort(key=lambda item: (-item[0], item[1].node.name))
        improved = False
        for _, geom in candidates:
            name = geom.node.name
            trial = dict(replicas)
            trial[name] += 1
            trial_estimate = cost_model.estimate_stage(geoms, trial, spill)
            if trial_estimate.cost < estimate.cost:
                replicas = trial
                estimate = trial_estimate
                cores_used += geom.cores_min
                improved = True
                break
            blocked.add(name)
        if not improved:
            break
    return replicas, estimate
