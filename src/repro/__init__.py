"""CIMFlow reproduction: an integrated framework for systematic design and
evaluation of digital Compute-in-Memory (CIM) architectures.

This package reproduces the system described in "CIMFlow: An Integrated
Framework for Systematic Design and Evaluation of Digital CIM Architectures"
(DAC 2025).  It provides:

- :mod:`repro.config`  -- hierarchical hardware abstraction (chip / core /
  unit) and the energy/latency parameter library.
- :mod:`repro.isa`     -- the 32-bit CIMFlow instruction set: formats,
  encoding, assembler and the extension registry.
- :mod:`repro.graph`   -- DNN computation-graph IR, shape inference, INT8
  quantisation and the model zoo (ResNet18, VGG19, MobileNetV2,
  EfficientNetB0).
- :mod:`repro.compiler` -- the two-level compilation flow: CG-level DP-based
  partitioning/mapping and OP-level loop transformations plus code
  generation.
- :mod:`repro.sim`     -- the cycle-accurate multi-core simulator with NoC
  and energy models, the functional golden model, and the fast analytical
  model.
- :mod:`repro.serve`   -- the serving API and primary entry point: a
  :class:`~repro.serve.Deployment` compiles once and serves many
  submissions under an explicit :class:`~repro.serve.ArrivalProcess`
  (back-to-back, fixed-rate, Poisson, recorded trace), reporting
  latency percentiles and per-shard utilisation; a
  :class:`~repro.serve.Fleet` feeds one arrival stream to R replicas
  under round-robin or join-shortest-queue dispatch.
- :mod:`repro.faults`  -- deterministic fault injection for fleets: a
  seeded :class:`~repro.faults.FaultPlan` of crashes, slowdowns, link
  degradation and transient failures replayed identically by both
  fidelity tiers, with retries/deadlines via
  :class:`~repro.faults.RetryPolicy` and a conservation guarantee
  (submitted == completed + dropped).
- :mod:`repro.runtime` -- the async real-time serving frontend:
  ``await deployment.serve_forever()`` opens a live session whose
  :meth:`~repro.runtime.ServerHandle.submit` coroutine stamps requests
  with release cycles from a pluggable clock
  (:class:`~repro.runtime.VirtualClock` deterministic,
  :class:`~repro.runtime.WallClock` production) and resolves a future
  per request; draining replays the recorded trace offline,
  bit-identical to :class:`~repro.serve.TraceArrivals`.
- :mod:`repro.console` -- the ``repro watch`` live operator console
  (Textual ``DataTable`` dashboard over the runtime's typed event
  stream) and its dependency-free headless ``--snapshot`` JSON mode.
- :mod:`repro.artifact` -- the shippable compile product: a compiled
  model serialized to a single content-addressed ``.artifact`` file
  (``save_artifact`` / ``load_artifact`` / ``Deployment.load``), so a
  serving session never re-runs the compiler.
- :mod:`repro.workflow` -- the legacy one-shot `compile -> simulate ->
  report` pipeline (deprecated shims over :mod:`repro.serve`, kept
  working).
- :mod:`repro.explore` -- the design-space exploration engine: declarative
  :class:`~repro.explore.SweepSpec` cross products, parallel execution and
  the on-disk result cache (:mod:`repro.explore_cache`).
- :mod:`repro.cli`     -- the ``python -m repro`` command line
  (`run` / `compile` / `inspect` / `serve` / `watch` / `sweep` /
  `compare` / `report`).

See ``README.md`` for a quickstart and ``docs/ARCHITECTURE.md`` for the
compilation/simulation stack in detail.
"""

from repro.errors import (
    ArtifactError,
    CapacityError,
    CompileError,
    ConfigError,
    FaultError,
    ISAError,
    ReproError,
    SimulationError,
    ValidationError,
)
from repro.faults import (
    FaultPlan,
    LinkDegrade,
    ReplicaCrash,
    ReplicaSlowdown,
    RetryPolicy,
    TransientRequestFailure,
    load_fault_plan,
    save_fault_plan,
)
from repro.artifact import inspect_artifact, load_artifact, save_artifact
from repro.config import ArchConfig, EnergyConfig, InterChipConfig, default_arch
from repro.compiler import (
    MultiChipModel,
    ShardingSpec,
    compile_sharded,
    shard_graph,
)
from repro.explore import (
    DesignPoint,
    SweepResult,
    SweepSpec,
    design_space,
    evaluate_fast,
    mg_flit_sweep,
    run_sweep,
    strategy_comparison,
)
from repro.explore_cache import ResultCache
from repro.sim.fastmodel import (
    FastReport,
    analyze_plan,
    analyze_sharded,
    serve_arrivals,
    serve_fleet,
    stream_batched,
)
from repro.sim.multichip import (
    MultiChipReport,
    MultiChipSimulator,
    steady_state_interval,
    streaming_schedule,
)
from repro.runtime import (
    ReplicaStateChanged,
    RequestAdmitted,
    RequestCompleted,
    RequestCompletion,
    RequestDropped,
    ServerHandle,
    VirtualClock,
    WallClock,
    serve_forever,
)
from repro.workflow import WorkflowResult, compile_model, run_workflow, simulate
from repro.serve import (
    ArrivalProcess,
    BackToBack,
    Deployment,
    FixedInterval,
    FixedRate,
    Fleet,
    FleetReport,
    PoissonArrivals,
    ServeReport,
    TraceArrivals,
)

__version__ = "0.1.0"

__all__ = [
    "ArchConfig",
    "EnergyConfig",
    "InterChipConfig",
    "default_arch",
    "Deployment",
    "ServeReport",
    "ArrivalProcess",
    "BackToBack",
    "FixedInterval",
    "FixedRate",
    "PoissonArrivals",
    "TraceArrivals",
    "serve_arrivals",
    "serve_fleet",
    "serve_forever",
    "ServerHandle",
    "VirtualClock",
    "WallClock",
    "RequestAdmitted",
    "RequestCompleted",
    "RequestDropped",
    "RequestCompletion",
    "ReplicaStateChanged",
    "Fleet",
    "FleetReport",
    "FaultPlan",
    "RetryPolicy",
    "ReplicaCrash",
    "ReplicaSlowdown",
    "LinkDegrade",
    "TransientRequestFailure",
    "load_fault_plan",
    "save_fault_plan",
    "save_artifact",
    "load_artifact",
    "inspect_artifact",
    "compile_model",
    "compile_sharded",
    "shard_graph",
    "ShardingSpec",
    "MultiChipModel",
    "MultiChipSimulator",
    "MultiChipReport",
    "analyze_sharded",
    "stream_batched",
    "steady_state_interval",
    "streaming_schedule",
    "simulate",
    "run_workflow",
    "WorkflowResult",
    "evaluate_fast",
    "design_space",
    "mg_flit_sweep",
    "strategy_comparison",
    "SweepSpec",
    "SweepResult",
    "run_sweep",
    "ResultCache",
    "DesignPoint",
    "analyze_plan",
    "FastReport",
    "ReproError",
    "ConfigError",
    "ISAError",
    "CompileError",
    "CapacityError",
    "ArtifactError",
    "FaultError",
    "SimulationError",
    "ValidationError",
    "__version__",
]
