"""First-class serving API: compile once, submit many, continuous arrivals.

The paper evaluates one inference at a time; the repository's north star
is a production-scale serving system.  This module is the user-facing
surface for that: a :class:`Deployment` owns one compiled model (single-
or multi-chip) across arbitrarily many submissions, and every submission
drives the streaming scheduler with an explicit arrival process::

    from repro import Deployment, FixedRate

    dep = Deployment("resnet18", chips=4, input_size=32, num_classes=10)
    report = dep.submit(batch=64, arrivals=FixedRate(2000))   # 2k inf/s
    print(report)          # p50/p95/p99 latency, per-shard utilisation
    report = dep.run_trace([0, 150, 900, 2400])               # recorded trace

**Queueing law.**  Input ``i`` is *released* at an arrival-process-chosen
cycle, waits until the first shard is free (FIFO, submission order),
then flows through the chip pipeline under the PR-4 streaming recurrence
(:func:`repro.sim.multichip.streaming_schedule`), now generalised to
nonzero release times: ``start[i][k] = max(release_i if k == 0,
finish[i-1][k], last inbound transfer arrival)``.  With every release at
cycle 0 this is bit-identical to the batched schedule, so batched mode
is the ``arrivals=BackToBack()`` special case.  Both fidelity tiers
share the law: ``tier="cyclesim"`` executes every input on the exact
simulator, ``tier="fast"`` prices the same schedule from the analytical
model (:func:`repro.sim.fastmodel.serve_arrivals`).

**Serving-session contract** (see ``docs/ARCHITECTURE.md``, "Serving
sessions").  What may persist across submissions is exactly the
*input-invariant* compile product: the compiled programs and the weight
image.  Activations and all runtime chip state do not persist -- every
input executes on fresh chip state (per-input isolation), which keeps
every output bit-identical to an independent single-input run.
"""

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.compiler import CompiledModel, MultiChipModel
from repro.config import ArchConfig
from repro.errors import ConfigError, SimulationError
from repro.faults import (
    FaultPlan,
    RetryPolicy,
    run_fault_schedule,
)
from repro.graph.graph import ComputationGraph
from repro.sim.functional import golden_outputs
from repro.sim.multichip import (
    MultiChipReport,
    MultiChipSimulator,
    TransferEdge,
    assemble_stream_report,
    merge_shard_energy,
    steady_state_interval,
    streaming_schedule,
)
from repro.workflow import (
    ArchLike,
    WorkflowResult,
    _resolve_batch_inputs,
    _run_single_chip,
    _validate_outputs,
    compile_model,
)


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------

class ArrivalProcess:
    """When each submitted input becomes available to the system.

    Implementations return per-input *release cycles* (non-negative,
    served FIFO in submission order).  ``cycle_ns`` is the deployment's
    clock period, so rate-based processes can be specified in real-world
    inferences/second.
    """

    def release_cycles(self, n: int, cycle_ns: float) -> List[int]:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class BackToBack(ArrivalProcess):
    """Every input available at cycle 0 -- the PR-4 batched special case."""

    def release_cycles(self, n: int, cycle_ns: float) -> List[int]:
        return [0] * n

    def describe(self) -> str:
        return "back-to-back"


class FixedInterval(ArrivalProcess):
    """Deterministic arrivals every ``interval_cycles`` cycles."""

    def __init__(self, interval_cycles: int):
        if interval_cycles < 0:
            raise ConfigError(
                f"arrival interval must be >= 0 cycles, got {interval_cycles}"
            )
        self.interval_cycles = int(interval_cycles)

    def release_cycles(self, n: int, cycle_ns: float) -> List[int]:
        return [i * self.interval_cycles for i in range(n)]

    def describe(self) -> str:
        return f"fixed-interval {self.interval_cycles} cycles"


class FixedRate(ArrivalProcess):
    """Deterministic arrivals at ``inf_per_s`` inferences/second."""

    def __init__(self, inf_per_s: float):
        if inf_per_s <= 0:
            raise ConfigError(
                f"arrival rate must be > 0 inferences/s, got {inf_per_s}"
            )
        self.inf_per_s = float(inf_per_s)

    def interval_cycles(self, cycle_ns: float) -> int:
        return max(1, int(round(1e9 / (self.inf_per_s * cycle_ns))))

    def release_cycles(self, n: int, cycle_ns: float) -> List[int]:
        step = self.interval_cycles(cycle_ns)
        return [i * step for i in range(n)]

    def describe(self) -> str:
        return f"fixed-rate {self.inf_per_s:g} inf/s"


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a mean ``inf_per_s`` rate.

    ``seed`` is caller-provided and mandatory: the draw is fully
    reproducible (NumPy ``default_rng``), so a serving experiment can be
    replayed bit-exactly.
    """

    def __init__(self, inf_per_s: float, seed: int):
        if inf_per_s <= 0:
            raise ConfigError(
                f"arrival rate must be > 0 inferences/s, got {inf_per_s}"
            )
        self.inf_per_s = float(inf_per_s)
        self.seed = int(seed)

    def release_cycles(self, n: int, cycle_ns: float) -> List[int]:
        rng = np.random.default_rng(self.seed)
        mean_cycles = 1e9 / (self.inf_per_s * cycle_ns)
        t = 0.0
        out: List[int] = []
        for gap in rng.exponential(mean_cycles, size=n):
            t += gap
            out.append(int(round(t)))
        return out

    def describe(self) -> str:
        return f"poisson {self.inf_per_s:g} inf/s (seed {self.seed})"


class TraceArrivals(ArrivalProcess):
    """A recorded arrival trace: one release cycle per input.

    Release cycles must be non-decreasing: the queueing law admits
    inputs FIFO in submission order, so a trace whose entry ``i+1``
    releases *before* entry ``i`` describes a different arrival order
    than the one it would be served in.  Such a trace is rejected with
    :class:`~repro.errors.ConfigError` instead of silently serving the
    late release first-in-line; sort the recorded timestamps before
    constructing the trace.
    """

    def __init__(self, release_cycles: Sequence[int]):
        self.releases = [int(c) for c in release_cycles]
        if any(c < 0 for c in self.releases):
            raise ConfigError("trace release cycles must be >= 0")
        for i in range(1, len(self.releases)):
            if self.releases[i] < self.releases[i - 1]:
                raise ConfigError(
                    f"trace release cycles must be non-decreasing "
                    f"(inputs are served FIFO in submission order): "
                    f"entry {i} releases at {self.releases[i]}, after "
                    f"entry {i - 1} at {self.releases[i - 1]}; sort the "
                    f"trace first"
                )

    def __len__(self) -> int:
        return len(self.releases)

    def release_cycles(self, n: int, cycle_ns: float) -> List[int]:
        if n != len(self.releases):
            raise ConfigError(
                f"trace has {len(self.releases)} arrivals but {n} inputs "
                f"were submitted"
            )
        return list(self.releases)

    def describe(self) -> str:
        return f"trace[{len(self.releases)}]"


def latency_percentile(latencies: Sequence[int], pct: float) -> int:
    """Nearest-rank percentile (deterministic on integer cycle counts).

    ``pct`` must lie in ``(0, 100]``: the 0th percentile is undefined
    under the nearest-rank definition (there is no rank 0) and anything
    above 100 would silently clamp to the maximum, so both are rejected
    with :class:`~repro.errors.ConfigError`.
    """
    if not 0.0 < pct <= 100.0:
        raise ConfigError(
            f"percentile must be in (0, 100], got {pct!r}"
        )
    if not latencies:
        return 0
    ordered = sorted(latencies)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return int(ordered[min(rank, len(ordered)) - 1])


# ---------------------------------------------------------------------------
# Serving report
# ---------------------------------------------------------------------------

@dataclass
class ServeReport:
    """One submission's view of the serving queueing model.

    Cycle accounting per input ``i``::

        release_i  (arrival)  <=  start_i  (enters shard 0)
        queue_i    = start_i  - release_i      (waiting for the pipeline)
        service_i  = finish_i - start_i        (inside the pipeline)
        latency_i  = finish_i - release_i      (what the client sees)

    ``shard_cycles`` is one input's per-shard occupancy (identical for
    every input: timing is data-independent under per-input isolation),
    ``shard_utilization`` each shard's busy fraction of the makespan,
    and ``steady_interval_cycles`` the closed-form bottleneck interval
    -- the saturation rate the deployment cannot exceed.  Energy, MACs
    and instruction counts sum over the whole stream.  ``stream_report``
    (cyclesim tier) is the aggregate :class:`MultiChipReport` in the
    PR-4 batched format, bit-identical to batched mode for back-to-back
    arrivals.
    """

    arch: ArchConfig
    tier: str
    batch: int
    arrival: str
    releases: List[int]
    service_starts: List[int]
    input_finishes: List[int]
    makespan_cycles: int
    steady_interval_cycles: int
    shard_cycles: List[int]
    shard_utilization: List[float]
    energy_breakdown_pj: Dict[str, float]
    macs: int = 0
    instructions: int = 0
    validated: bool = False
    stream_report: Optional[MultiChipReport] = field(default=None, repr=False)
    per_input_outputs: Optional[List[Dict[str, np.ndarray]]] = field(
        default=None, repr=False
    )
    golden: Optional[Dict[str, np.ndarray]] = field(default=None, repr=False)
    #: Resident-weights session bookkeeping.  ``load_cycles`` is the
    #: weight-load phase THIS submission paid (0 on a warm submission);
    #: ``load_energy_pj`` its run-once energy, already included in
    #: ``energy_breakdown_pj``.
    resident: bool = False
    load_cycles: int = 0
    load_energy_pj: Dict[str, float] = field(default_factory=dict)

    # -- derived cycle series ----------------------------------------------
    @property
    def queue_cycles(self) -> List[int]:
        return [s - r for s, r in zip(self.service_starts, self.releases)]

    @property
    def service_cycles(self) -> List[int]:
        return [f - s for f, s in zip(self.input_finishes, self.service_starts)]

    @property
    def latency_cycles(self) -> List[int]:
        return [f - r for f, r in zip(self.input_finishes, self.releases)]

    def latency_percentile_cycles(self, pct: float) -> int:
        return latency_percentile(self.latency_cycles, pct)

    @property
    def p50_latency_cycles(self) -> int:
        return self.latency_percentile_cycles(50)

    @property
    def p95_latency_cycles(self) -> int:
        return self.latency_percentile_cycles(95)

    @property
    def p99_latency_cycles(self) -> int:
        return self.latency_percentile_cycles(99)

    # -- unit conversions ---------------------------------------------------
    @property
    def cycle_ns(self) -> float:
        return self.arch.chip.cycle_ns

    def _ms(self, cycles: int) -> float:
        return cycles * self.cycle_ns / 1e6

    @property
    def makespan_ms(self) -> float:
        return self._ms(self.makespan_cycles)

    @property
    def p50_latency_ms(self) -> float:
        return self._ms(self.p50_latency_cycles)

    @property
    def p95_latency_ms(self) -> float:
        return self._ms(self.p95_latency_cycles)

    @property
    def p99_latency_ms(self) -> float:
        return self._ms(self.p99_latency_cycles)

    @property
    def throughput_inf_per_s(self) -> float:
        """Sustained rate actually achieved: completions over makespan."""
        if self.batch == 0 or self.makespan_cycles <= 0:
            return 0.0
        return self.batch / (self.makespan_cycles * self.cycle_ns / 1e9)

    @property
    def saturation_inf_per_s(self) -> float:
        """The rate ceiling: one inference per bottleneck interval."""
        if self.steady_interval_cycles <= 0:
            return 0.0
        return 1e9 / (self.steady_interval_cycles * self.cycle_ns)

    @property
    def num_shards(self) -> int:
        return len(self.shard_cycles)

    @property
    def total_energy_pj(self) -> float:
        return sum(self.energy_breakdown_pj.values())

    @property
    def total_energy_mj(self) -> float:
        return self.total_energy_pj / 1e9

    @property
    def energy_per_inference_mj(self) -> float:
        return self.total_energy_mj / max(1, self.batch)

    def to_dict(self) -> Dict:
        from repro.config import arch_fingerprint

        payload = {
            "arch_fingerprint": arch_fingerprint(self.arch),
            "tier": self.tier,
            "batch": int(self.batch),
            "arrival": self.arrival,
            "num_shards": self.num_shards,
            "releases": [int(c) for c in self.releases],
            "service_starts": [int(c) for c in self.service_starts],
            "input_finishes": [int(c) for c in self.input_finishes],
            "queue_cycles": [int(c) for c in self.queue_cycles],
            "latency_cycles": [int(c) for c in self.latency_cycles],
            "makespan_cycles": int(self.makespan_cycles),
            "makespan_ms": self.makespan_ms,
            "steady_interval_cycles": int(self.steady_interval_cycles),
            "p50_latency_cycles": self.p50_latency_cycles,
            "p95_latency_cycles": self.p95_latency_cycles,
            "p99_latency_cycles": self.p99_latency_cycles,
            "p50_latency_ms": self.p50_latency_ms,
            "p95_latency_ms": self.p95_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "throughput_inf_per_s": self.throughput_inf_per_s,
            "saturation_inf_per_s": self.saturation_inf_per_s,
            "shard_cycles": [int(c) for c in self.shard_cycles],
            "shard_utilization": [float(u) for u in self.shard_utilization],
            "total_energy_mj": self.total_energy_mj,
            "energy_per_inference_mj": self.energy_per_inference_mj,
            "macs": int(self.macs),
            "instructions": int(self.instructions),
            "validated": self.validated,
            "energy_breakdown_pj": {
                k: float(v) for k, v in self.energy_breakdown_pj.items()
            },
        }
        # Only resident sessions carry the load-amortization block, so a
        # non-resident report serializes byte-identically to before.
        if self.resident:
            payload["resident"] = True
            payload["load_cycles"] = int(self.load_cycles)
            payload["load_energy_pj"] = {
                k: float(v) for k, v in self.load_energy_pj.items()
            }
        return payload

    def __str__(self) -> str:
        lines = [
            f"tier              : {self.tier}",
            f"shards            : {self.num_shards}",
            f"inputs            : {self.batch} ({self.arrival})",
            f"makespan          : {self.makespan_cycles:,} cycles "
            f"({self.makespan_ms:.3f} ms)",
            f"sustained rate    : {self.throughput_inf_per_s:,.0f} inf/s "
            f"(saturation {self.saturation_inf_per_s:,.0f} inf/s)",
            f"latency p50       : {self.p50_latency_cycles:,} cycles "
            f"({self.p50_latency_ms:.3f} ms)",
            f"latency p95       : {self.p95_latency_cycles:,} cycles "
            f"({self.p95_latency_ms:.3f} ms)",
            f"latency p99       : {self.p99_latency_cycles:,} cycles "
            f"({self.p99_latency_ms:.3f} ms)",
        ]
        queue = self.queue_cycles
        if queue:
            lines.append(
                f"queue wait        : mean {sum(queue) / len(queue):,.0f}, "
                f"max {max(queue):,} cycles"
            )
        lines.append(
            f"energy            : {self.total_energy_mj:.4f} mJ "
            f"({self.energy_per_inference_mj:.4f} mJ/inference)"
        )
        if self.resident:
            lines.append(
                f"resident load     : {self.load_cycles:,} cycles"
                + (
                    " (paid this submission)"
                    if self.load_cycles else " (session warm)"
                )
            )
        lines.append("shard utilization :")
        for k, util in enumerate(self.shard_utilization):
            lines.append(f"  chip {k}: {100 * util:5.1f}%")
        return "\n".join(lines)


def _shard_utilization(
    rows: Sequence[Sequence[int]], makespan: int
) -> List[float]:
    """Per-shard busy fraction of the stream makespan."""
    if not rows or makespan <= 0:
        return [0.0] * (len(rows[0]) if rows else 0)
    return [
        sum(row[k] for row in rows) / makespan for k in range(len(rows[0]))
    ]


# ---------------------------------------------------------------------------
# Deployment
# ---------------------------------------------------------------------------

ModelLike = Union[str, ComputationGraph, CompiledModel, MultiChipModel]


class Deployment:
    """A compiled model held resident across many submissions.

    ``Deployment(model, arch, chips=N)`` compiles exactly once (single-
    or multi-chip); :meth:`submit` and :meth:`run_trace` then drive the
    streaming scheduler with per-input release cycles from an
    :class:`ArrivalProcess`, and :meth:`run` executes one input in the
    classic latency mode.  ``model`` may also be an already-compiled
    :class:`CompiledModel` / :class:`MultiChipModel`, which the
    deployment adopts as-is.

    ``tier`` selects fidelity: ``"cyclesim"`` (default) executes every
    input on the exact cycle-level simulator with bit-exact golden
    validation; ``"fast"`` prices the identical queueing schedule from
    the analytical model (no functional outputs) and never code-
    generates, so it scales to paper-sized models.

    ``resident_weights=True`` opens a *resident session*: the compiler's
    input-invariant weight-load prologue becomes a separable program
    segment that the session executes once (the first submission pays
    it; the load phase completes on every shard before the first input
    enters the pipeline), and every input -- including all of the first
    submission's -- replays only activation traffic.  The steady-state
    law stays exact with the load folded in front::

        makespan(B) = load + warm_makespan(1) + (B - 1) * warm_bottleneck

    Outputs are bit-identical to the non-resident path in both fidelity
    tiers.  Artifact-loaded models cannot open resident sessions (the
    artifact stores only the serving surface, not the execution plan).
    """

    def __init__(
        self,
        model: ModelLike,
        arch: ArchLike = None,
        *,
        chips: int = 1,
        strategy: str = "dp",
        engine: Optional[str] = None,
        tier: str = "cyclesim",
        closure_limit: Optional[int] = None,
        resident_weights: bool = False,
        **model_kwargs,
    ):
        if tier not in ("cyclesim", "fast"):
            raise ConfigError(
                f"unknown deployment tier {tier!r}; expected 'cyclesim' "
                f"or 'fast'"
            )
        self.tier = tier
        self.engine = engine
        self.compiled: Union[CompiledModel, MultiChipModel, None] = None
        self._plans = None
        self._sharding = None
        self._fast_reports = None
        self._profile = None  #: cached (service row, transfer edges)

        if isinstance(model, (CompiledModel, MultiChipModel)):
            if (
                arch is not None or model_kwargs or chips != 1
                or strategy != "dp" or closure_limit is not None
            ):
                raise ConfigError(
                    "a compiled model carries its own architecture, "
                    "sharding and strategy; pass Deployment(compiled) "
                    "with no compile keywords (arch/chips/strategy/"
                    "closure_limit/model kwargs)"
                )
            self.compiled = model
        elif tier == "fast":
            # Plan-only compilation: the fast tier never executes
            # instructions, so OP-level code generation is skipped.
            from repro.compiler.partition import shard_graph
            from repro.compiler.pipeline import plan_graph
            from repro.workflow import _resolve_arch, _resolve_graph

            graph = _resolve_graph(model, **model_kwargs)
            resolved = _resolve_arch(arch)
            if chips < 1:
                raise ConfigError(f"chip count must be >= 1, got {chips}")
            if chips > 1:
                self._sharding = shard_graph(graph, chips)
                self._plans = [
                    plan_graph(shard.graph, resolved, strategy, closure_limit)
                    for shard in self._sharding.shards
                ]
            else:
                self._plans = [
                    plan_graph(graph, resolved, strategy, closure_limit)
                ]
            self._graph = graph
            self._arch = resolved
        else:
            self.compiled = compile_model(
                model, arch, strategy, chips=chips, **model_kwargs
            )

        if self.compiled is not None:
            self._graph = self.compiled.graph
            self._arch = self.compiled.arch
            if self.tier == "fast":
                if isinstance(self.compiled, MultiChipModel):
                    self._plans = [c.plan for c in self.compiled.chips]
                    self._sharding = self.compiled.sharding
                else:
                    self._plans = [self.compiled.plan]

        self.resident_weights = bool(resident_weights)
        #: Accounting flag: has this serving session already paid the
        #: weight-load phase?  A :class:`Fleet` toggles it per replica.
        self._resident_loaded = False
        self._resident_sim = None  #: cyclesim persistent simulator state
        self._resident_load_reports = None  #: measured load segments
        self._resident_fast = None  #: fast tier (warm, load, energy) cache
        if self.resident_weights:
            self._check_resident_support()

    def _check_resident_support(self) -> None:
        if self.tier == "cyclesim":
            shards = (
                self.compiled.chips
                if isinstance(self.compiled, MultiChipModel)
                else [self.compiled]
            )
            if all(c.supports_resident() for c in shards):
                return
        elif all(
            getattr(plan, "stages", None) is not None for plan in self._plans
        ):
            return
        raise ConfigError(
            "resident_weights needs the full execution plan; artifact-"
            "loaded models carry only the serving surface.  Recompile "
            "from source to open a resident session."
        )

    @classmethod
    def load(
        cls,
        path,
        arch: ArchLike = None,
        *,
        tier: str = "cyclesim",
        engine: Optional[str] = None,
        resident_weights: bool = False,
    ) -> "Deployment":
        """Open a deployment from a saved ``.artifact`` file.

        The artifact's compile product is adopted as-is -- the compiler
        never runs.  When ``arch`` is given, the artifact must have been
        compiled for that exact architecture point
        (:func:`repro.config.arch_fingerprint` match); a mismatch raises
        :class:`~repro.errors.ArtifactError` naming both fingerprints.
        """
        from repro.artifact import load_artifact

        if arch is not None:
            from repro.workflow import _resolve_arch

            arch = _resolve_arch(arch)
        return cls(
            load_artifact(path, arch=arch), tier=tier, engine=engine,
            resident_weights=resident_weights,
        )

    # -- introspection ------------------------------------------------------
    @property
    def graph(self) -> ComputationGraph:
        return self._graph

    @property
    def arch(self) -> ArchConfig:
        return self._arch

    @property
    def num_chips(self) -> int:
        if isinstance(self.compiled, MultiChipModel):
            return self.compiled.num_chips
        if self.compiled is not None:
            return 1
        return len(self._plans)

    @property
    def is_sharded(self) -> bool:
        return self.num_chips > 1

    def summary(self) -> str:
        if self.compiled is not None:
            return self.compiled.summary()
        lines = [plan.summary() for plan in self._plans]
        lines.append(f"  fast-tier deployment, {self.num_chips} chip(s)")
        return "\n".join(lines)

    def _transfer_edges(self) -> List[TransferEdge]:
        if isinstance(self.compiled, MultiChipModel):
            return [
                (t.src_chip, t.dst_chip, t.nbytes)
                for t in self.compiled.transfers
            ]
        if self.compiled is None and self._sharding is not None:
            edges: List[TransferEdge] = []
            for shard in self._sharding.shards:
                for tensor in sorted(shard.incoming):
                    edges.append((
                        shard.incoming[tensor],
                        shard.index,
                        self._sharding.graph.tensor(tensor).size_bytes,
                    ))
            edges.sort()
            return edges
        return []

    def _service_profile(self):
        """(per-shard cycle row, transfer edges) of one input.

        Timing is data-independent under per-input isolation, so in the
        cyclesim tier a single probe submission measures the exact
        service row every admission prediction needs; the fast tier
        reads its analytical reports.  Cached for the deployment's
        lifetime (the compile product is immutable).
        """
        if self._profile is None:
            edges = self._transfer_edges()
            if self.tier == "fast":
                row = [r.cycles for r in self._fast_shard_reports()]
            else:
                # The probe must not consume a resident session's cold
                # start: the accounting flag is restored so the first
                # real submission still pays the load phase.  (The
                # probe's shard_cycles are the warm row -- exactly the
                # per-input service profile a resident session
                # schedules.)
                loaded = self._resident_loaded
                probe = self.submit(batch=1, validate=False)
                self._resident_loaded = loaded
                row = list(probe.shard_cycles)
            self._profile = (row, edges)
        return self._profile

    def serve_forever(
        self,
        *,
        clock=None,
        seed: int = 0,
        validate: bool = True,
    ):
        """Open an async real-time serving session on this deployment.

        Must be awaited inside a running asyncio event loop; returns a
        :class:`repro.runtime.ServerHandle` whose ``submit()`` coroutine
        accepts wall-clock (or :class:`repro.runtime.VirtualClock`)
        requests and resolves a future per request with its completion
        cycle and latency.  See :mod:`repro.runtime`.
        """
        from repro.runtime import serve_forever

        return serve_forever(self, clock=clock, seed=seed, validate=validate)

    # -- single-input latency mode -----------------------------------------
    def run(
        self,
        input_data: Optional[np.ndarray] = None,
        *,
        validate: bool = True,
        seed: int = 0,
    ) -> WorkflowResult:
        """Execute one input end to end (classic latency mode).

        Cycle-level execution with the Fig. 2 bit-exact golden check;
        equivalent to the legacy ``simulate(compiled)`` single-input
        path.  Requires ``tier="cyclesim"``.
        """
        self._require_cyclesim("run()")
        from repro.sim.functional import random_input

        graph = self.graph
        if input_data is None:
            input_data = random_input(graph, seed=seed)
        input_tensor = graph.input_operators[0].output

        if isinstance(self.compiled, MultiChipModel):
            sim = MultiChipSimulator(self.compiled, engine=self.engine)
            sim.write_input(input_tensor, input_data)
            report = sim.run()
            outputs = {
                name: sim.read_output(name).reshape(graph.tensor(name).shape)
                for name in graph.outputs
            }
            label = f"{self.compiled.num_chips} chips"
        else:
            report, outputs = _run_single_chip(
                self.compiled, input_data, self.engine
            )
            label = self.compiled.plan.strategy

        golden = None
        validated = False
        if validate:
            golden = golden_outputs(graph, {input_tensor: input_data})
            _validate_outputs(graph, outputs, golden, label)
            validated = True
        return WorkflowResult(
            compiled=self.compiled,
            report=report,
            outputs=outputs,
            golden=golden,
            validated=validated,
        )

    def _require_cyclesim(self, what: str) -> None:
        if self.tier != "cyclesim":
            raise ConfigError(
                f"{what} needs cycle-level execution; this deployment was "
                f"created with tier='fast'"
            )

    # -- streaming submissions ---------------------------------------------
    def submit(
        self,
        inputs=None,
        *,
        batch: int = 1,
        arrivals: Optional[Union[ArrivalProcess, Sequence[int]]] = None,
        seed: int = 0,
        validate: bool = True,
    ) -> ServeReport:
        """Submit a stream of inputs under an arrival process.

        ``inputs`` follows the batched-workflow conventions (``None``
        draws ``batch`` reproducible random inputs seeded ``seed``,
        ``seed+1``, ...; a list / stacked array of input tensors sets
        the batch implicitly).  ``arrivals`` is an
        :class:`ArrivalProcess` (default :class:`BackToBack`) or a bare
        sequence of release cycles; an empty :class:`TraceArrivals`
        yields an empty report.  The cyclesim tier validates every input
        bit-exactly against the golden model; the fast tier carries no
        functional outputs (``validate`` is ignored).
        """
        if arrivals is None:
            arrivals = BackToBack()
        elif not isinstance(arrivals, ArrivalProcess):
            arrivals = TraceArrivals(arrivals)
        if isinstance(arrivals, TraceArrivals) and batch == 1:
            batch = len(arrivals)
            if batch == 0:
                return self._empty_report(arrivals)
        if batch < 1:
            raise ConfigError(f"batch must be >= 1, got {batch}")

        if self.tier == "fast":
            # Timing is data-independent, so the fast tier only uses
            # ``inputs`` to set/check the batch (shape-validated like
            # the cyclesim tier); the tensor contents are not executed.
            if inputs is not None:
                batch = len(
                    _resolve_batch_inputs(self.graph, inputs, batch, seed)
                )
            releases = arrivals.release_cycles(batch, self.arch.chip.cycle_ns)
            return self._submit_fast(releases, arrivals)

        resolved = _resolve_batch_inputs(self.graph, inputs, batch, seed)
        releases = arrivals.release_cycles(
            len(resolved), self.arch.chip.cycle_ns
        )
        return self._submit_cyclesim(resolved, releases, arrivals, validate)

    def run_trace(
        self,
        trace: Union[TraceArrivals, Sequence[int]],
        inputs=None,
        *,
        seed: int = 0,
        validate: bool = True,
    ) -> ServeReport:
        """Replay a recorded arrival trace (one release cycle per input).

        ``run_trace([0, 0, ..., 0])`` reproduces the batched streaming
        schedule of PR 4 exactly -- same makespan, bit-identical
        outputs.  An empty trace is legal and yields an empty report.
        """
        if not isinstance(trace, TraceArrivals):
            trace = TraceArrivals(trace)
        if not len(trace):
            return self._empty_report(trace)
        return self.submit(
            inputs, batch=len(trace), arrivals=trace, seed=seed,
            validate=validate,
        )

    def _empty_report(self, arrivals: ArrivalProcess) -> ServeReport:
        shard_cycles = [0] * self.num_chips
        return ServeReport(
            arch=self.arch,
            tier=self.tier,
            batch=0,
            arrival=arrivals.describe(),
            releases=[],
            service_starts=[],
            input_finishes=[],
            makespan_cycles=0,
            steady_interval_cycles=0,
            shard_cycles=shard_cycles,
            shard_utilization=[0.0] * self.num_chips,
            energy_breakdown_pj={},
            per_input_outputs=[] if self.tier == "cyclesim" else None,
        )

    # -- cyclesim tier ------------------------------------------------------
    def _submit_cyclesim(
        self,
        inputs: Sequence[np.ndarray],
        releases: List[int],
        arrivals: ArrivalProcess,
        validate: bool,
    ) -> ServeReport:
        graph = self.graph
        link = self.arch.interchip
        edges = self._transfer_edges()
        input_tensor = graph.input_operators[0].output
        batch = len(inputs)

        if self.resident_weights:
            per_input_reports, per_input_outputs = self._resident_execute(
                inputs
            )
            rows = [[r.cycles for r in reports] for reports in per_input_reports]
            interchip_per_input = (
                self.compiled.interchip_bytes()
                if isinstance(self.compiled, MultiChipModel) else 0
            )
            label = f"resident session, serve {batch}"
        elif isinstance(self.compiled, MultiChipModel):
            sim = MultiChipSimulator(self.compiled, engine=self.engine)
            per_input_reports, per_input_outputs = sim.execute_stream(
                inputs, input_tensor
            )
            rows = [[r.cycles for r in reports] for reports in per_input_reports]
            interchip_per_input = self.compiled.interchip_bytes()
            label = f"{self.compiled.num_chips} chips, serve {batch}"
        else:
            single_reports = []
            per_input_outputs = []
            for data in inputs:
                report, outputs = _run_single_chip(
                    self.compiled, data, self.engine
                )
                single_reports.append(report)
                per_input_outputs.append(outputs)
            per_input_reports = [[r] for r in single_reports]
            rows = [[r.cycles] for r in single_reports]
            interchip_per_input = 0
            label = f"{self.compiled.plan.strategy}, serve {batch}"

        # Resident cold start: the load phase completes on every shard
        # before the first input enters the pipeline, so the schedule sees
        # releases clamped to the load-done cycle -- which is exactly what
        # keeps makespan(B) = load + warm_makespan(1) + (B-1)*bottleneck.
        load_done, load_energy, load_macs, load_instr = 0, {}, 0, 0
        if self.resident_weights and not self._resident_loaded:
            load_done, load_energy, load_macs, load_instr = (
                self._resident_load_profile()
            )
        sched_releases = (
            [max(r, load_done) for r in releases] if load_done
            else list(releases)
        )
        schedule = streaming_schedule(rows, edges, link, sched_releases)
        starts, _, input_finishes, makespan = schedule
        stream_report = assemble_stream_report(
            self.arch, per_input_reports, edges, schedule, interchip_per_input
        )

        golden = None
        validated = False
        if validate:
            for index, (data, outputs) in enumerate(
                zip(inputs, per_input_outputs)
            ):
                expected = golden_outputs(graph, {input_tensor: data})
                _validate_outputs(
                    graph, outputs, expected, f"{label}, input {index}"
                )
                if index == 0:
                    golden = expected
            validated = True

        energy = dict(stream_report.energy_breakdown_pj)
        for key, value in load_energy.items():
            energy[key] = energy.get(key, 0.0) + value
        report = ServeReport(
            arch=self.arch,
            tier="cyclesim",
            batch=batch,
            arrival=arrivals.describe(),
            releases=list(releases),
            service_starts=[row[0] for row in starts],
            input_finishes=input_finishes,
            makespan_cycles=makespan,
            steady_interval_cycles=stream_report.steady_interval_cycles,
            shard_cycles=[r.cycles for r in per_input_reports[0]],
            shard_utilization=_shard_utilization(rows, makespan),
            energy_breakdown_pj=energy,
            macs=stream_report.macs + load_macs,
            instructions=stream_report.instructions + load_instr,
            validated=validated,
            stream_report=stream_report,
            per_input_outputs=list(per_input_outputs),
            golden=golden,
            resident=self.resident_weights,
            load_cycles=load_done,
            load_energy_pj=load_energy,
        )
        if self.resident_weights:
            self._resident_loaded = True
        return report

    # -- resident-weights session ------------------------------------------
    def _resident_execute(self, inputs: Sequence[np.ndarray]):
        """Cyclesim functional half of a resident-session submission.

        The first call runs every shard's separable load segment on
        fresh chips and keeps the simulator (loaded macro groups and
        constant bands persist for the whole session); every input --
        on this and every later call -- replays only the warm
        activation program against that state.
        """
        from repro.sim.blockengine import ENGINE_STATS

        graph = self.graph
        input_tensor = graph.input_operators[0].output
        if isinstance(self.compiled, MultiChipModel):
            if self._resident_sim is None:
                sim = MultiChipSimulator(self.compiled, engine=self.engine)
                self._resident_load_reports = sim.load_resident()
                self._resident_sim = sim
            return self._resident_sim.execute_warm_stream(
                inputs, input_tensor
            )

        from repro.sim.chip import ChipSimulator

        if self._resident_sim is None:
            warm, load = self.compiled.resident_segments()
            sim = ChipSimulator.from_compiled(self.compiled, engine=self.engine)
            sim.reset_run(load)
            self._resident_load_reports = [sim.run()]
            ENGINE_STATS["resident_load_runs"] += 1
            self._resident_sim = (sim, warm)
        sim, warm = self._resident_sim
        per_input_reports = []
        per_input_outputs = []
        for data in inputs:
            sim.reset_run(warm)
            ENGINE_STATS["resident_warm_runs"] += 1
            sim.memory.write_global(
                self.compiled.input_address(input_tensor),
                np.asarray(data, np.int8),
            )
            report = sim.run()
            outputs: Dict[str, np.ndarray] = {}
            for name in graph.outputs:
                resolved = self.compiled.plan.cgraph.resolve(name)
                info = graph.tensor(name)
                raw = sim.memory.read_global(
                    self.compiled.plan.tensor_address[resolved],
                    info.size_bytes,
                )
                outputs[name] = raw.reshape(info.shape)
            per_input_reports.append([report])
            per_input_outputs.append(outputs)
        return per_input_reports, per_input_outputs

    def _resident_load_profile(self):
        """This session's load price: ``(cycles, energy, macs, instrs)``.

        ``cycles`` is the session load phase (shards load in parallel,
        so it is the max over shards).  The cyclesim tier measures the
        actual load segments -- running them now if no submission has
        yet -- and the fast tier reads the closed-form mirror.
        """
        if self.tier == "fast":
            _, load_done, load_energy = self._resident_fast_profile()
            return load_done, dict(load_energy), 0, 0
        if self._resident_load_reports is None:
            self._resident_execute([])
        reports = self._resident_load_reports
        load_energy: Dict[str, float] = {}
        for rep in reports:
            for key, value in rep.energy_breakdown_pj.items():
                load_energy[key] = load_energy.get(key, 0.0) + value
        return (
            max((r.cycles for r in reports), default=0),
            load_energy,
            sum(r.macs for r in reports),
            sum(r.instructions for r in reports),
        )

    def _resident_fast_profile(self):
        """Fast tier: (per-shard warm reports, load phase, load energy)."""
        if self._resident_fast is None:
            from repro.sim.fastmodel import analyze_plan_resident

            warm_reports = []
            load_done = 0
            load_energy: Dict[str, float] = {}
            for plan in self._plans:
                warm, load, energy = analyze_plan_resident(plan)
                warm_reports.append(warm)
                load_done = max(load_done, load)
                for key, value in energy.items():
                    load_energy[key] = load_energy.get(key, 0.0) + value
            self._resident_fast = (warm_reports, load_done, load_energy)
        return self._resident_fast

    # -- fast tier ----------------------------------------------------------
    def _fast_shard_reports(self):
        if self.resident_weights:
            # Resident sessions price every input from the warm (load-
            # free) analysis; the load phase is accounted separately.
            return self._resident_fast_profile()[0]
        if self._fast_reports is None:
            from repro.sim.fastmodel import analyze_plan

            # A plan loaded from an artifact carries its save-time
            # analysis; re-analysing would need the full CG-level state
            # the artifact deliberately does not store.
            self._fast_reports = [
                getattr(plan, "fast_report", None) or analyze_plan(plan)
                for plan in self._plans
            ]
        return self._fast_reports

    def _submit_fast(
        self, releases: List[int], arrivals: ArrivalProcess
    ) -> ServeReport:
        link = self.arch.interchip
        edges = self._transfer_edges()
        shard_reports = self._fast_shard_reports()
        row = [r.cycles for r in shard_reports]
        batch = len(releases)
        rows = [list(row) for _ in range(batch)]
        load_done, load_energy = 0, {}
        if self.resident_weights and not self._resident_loaded:
            load_done, load_energy = self._resident_fast_profile()[1:]
        sched_releases = (
            [max(r, load_done) for r in releases] if load_done
            else list(releases)
        )
        starts, finishes, input_finishes, makespan = streaming_schedule(
            rows, edges, link, sched_releases
        )
        interchip_total = sum(nbytes for _, _, nbytes in edges)
        per_input = merge_shard_energy(
            [r.energy_breakdown_pj for r in shard_reports],
            interchip_total, link,
        )
        energy = {k: v * batch for k, v in per_input.items()}
        for key, value in load_energy.items():
            energy[key] = energy.get(key, 0.0) + value
        report = ServeReport(
            arch=self.arch,
            tier="fast",
            batch=batch,
            arrival=arrivals.describe(),
            releases=list(releases),
            service_starts=[r[0] for r in starts],
            input_finishes=input_finishes,
            makespan_cycles=makespan,
            steady_interval_cycles=steady_state_interval(row, edges, link),
            shard_cycles=row,
            shard_utilization=_shard_utilization(rows, makespan),
            energy_breakdown_pj=energy,
            macs=sum(r.macs for r in shard_reports) * batch,
            instructions=0,
            resident=self.resident_weights,
            load_cycles=load_done,
            load_energy_pj=dict(load_energy),
        )
        if self.resident_weights:
            self._resident_loaded = True
        return report


# ---------------------------------------------------------------------------
# Replicated serving: Fleet
# ---------------------------------------------------------------------------

#: Dispatch policies a :class:`Fleet` understands.
FLEET_POLICIES = ("rr", "jsq")


class _ReplicaState:
    """Incremental mirror of one replica's streaming-schedule recurrence.

    Admitting an input applies exactly the per-input inner loop of
    :func:`repro.sim.multichip.streaming_schedule` (same ``prev_finish``
    per shard, same per-(src, dst) link serialisation), so the predicted
    finish cycles match what the replica's own submission will compute.
    Timing is data-independent under per-input isolation (the serving
    contract), which is what makes a one-input probe row exact for every
    input.
    """

    def __init__(self, row: Sequence[int], edges, link):
        self.row = list(row)
        self.edges = list(edges)
        self.link = link
        self.prev_finish = [0] * len(self.row)
        self.link_free: Dict[tuple, int] = {}
        self.finishes: List[int] = []

    def admit(self, release: int) -> Tuple[int, int]:
        """Account one input released at ``release``.

        Returns ``(start, finish)``: the shard-0 service-entry cycle
        and the last-shard completion cycle.
        """
        n = len(self.row)
        arrival = [0] * n
        if n:
            arrival[0] = release
        first_start = release
        finishes = [0] * n
        for k in range(n):
            start = max(arrival[k], self.prev_finish[k])
            if k == 0:
                first_start = start
            finishes[k] = start + self.row[k]
            for src, dst, nbytes in self.edges:
                if src != k:
                    continue
                depart = max(
                    finishes[k], self.link_free.get((src, dst), 0)
                )
                self.link_free[(src, dst)] = (
                    depart + self.link.serialization_cycles(nbytes)
                )
                arrive = depart + self.link.transfer_cycles(nbytes)
                arrival[dst] = max(arrival[dst], arrive)
        self.prev_finish = finishes
        finish = max(finishes) if finishes else release
        self.finishes.append(finish)
        return first_start, finish

    def queue_depth(self, now: int) -> int:
        """Inputs admitted so far that would still be in flight at ``now``."""
        return sum(1 for f in self.finishes if f > now)


class _Dispatcher:
    """Incremental fleet routing: one release in, one replica index out.

    The exact dispatch law of :meth:`Fleet.submit` (which drives it over
    the whole release list) factored into a per-release step so the
    async runtime (:mod:`repro.runtime`) can route wall-clock arrivals
    online with bit-identical choices: ``"rr"`` sends global input ``i``
    to replica ``i % R``; ``"jsq"`` joins the replica with the fewest
    predicted in-flight inputs at release time (ties to the lowest
    index), predictions from each replica's :class:`_ReplicaState`
    admission mirror.
    """

    def __init__(self, policy: str, replicas: int, row, edges, link):
        if policy not in FLEET_POLICIES:
            raise ConfigError(
                f"unknown dispatch policy {policy!r}; expected one of "
                f"{FLEET_POLICIES}"
            )
        self.policy = policy
        self.replicas = int(replicas)
        self._count = 0
        self._states = (
            [_ReplicaState(row, edges, link) for _ in range(self.replicas)]
            if policy == "jsq" else None
        )

    def route(self, release: int) -> int:
        if self.policy == "rr":
            choice = self._count % self.replicas
            self._count += 1
            return choice
        depths = [state.queue_depth(release) for state in self._states]
        choice = min(range(self.replicas), key=lambda r: (depths[r], r))
        self._states[choice].admit(release)
        return choice


@dataclass
class FleetReport:
    """One submission's view across all replicas of a :class:`Fleet`.

    ``assignments[i]`` names the replica that served global input ``i``;
    ``releases`` / ``input_finishes`` are in global submission order, so
    latency percentiles aggregate over the whole fleet.
    ``replica_reports[r]`` is replica ``r``'s own :class:`ServeReport`
    for its sub-stream (empty-report shaped when a replica received no
    inputs).  ``steady_interval_cycles`` is one replica's bottleneck
    interval; the fleet saturation rate is ``replicas`` times the
    single-replica ceiling.

    **Availability** (fault-injected submissions, :mod:`repro.faults`):
    ``assignments[i] == -1`` marks global input ``i`` as *dropped*
    (``drop_reasons`` says why, ``input_finishes[i] == 0``); request
    conservation always holds (``submitted == completed + dropped``).
    Latency series and percentiles cover completed requests only.
    ``attempt_counts`` is empty unless the failover engine ran; when it
    did, ``attempt_counts[i]`` counts input ``i``'s dispatches and
    ``retries`` the re-enqueues.  ``goodput_inf_per_s`` is the rate of
    *completed* work over the makespan; ``offered_inf_per_s`` the
    arrival-stream demand; ``replica_downtime[r]`` the injected
    crash/slowdown/degrade windows of replica ``r``.
    """

    arch: ArchConfig
    tier: str
    policy: str
    replicas: int
    batch: int
    arrival: str
    assignments: List[int]
    releases: List[int]
    input_finishes: List[int]
    makespan_cycles: int
    steady_interval_cycles: int
    replica_reports: List[ServeReport] = field(repr=False, default_factory=list)
    energy_breakdown_pj: Dict[str, float] = field(default_factory=dict)
    macs: int = 0
    instructions: int = 0
    validated: bool = False
    fault_events: List[Dict] = field(default_factory=list)
    retry_policy: Optional[Dict] = None
    dropped_indices: List[int] = field(default_factory=list)
    drop_reasons: Dict[int, str] = field(default_factory=dict)
    attempt_counts: List[int] = field(default_factory=list)
    retries: int = 0
    replica_downtime: List[List[Dict]] = field(default_factory=list)
    #: Fault-injected submissions: per-replica busy cycles measured from
    #: the actually-executed attempt windows (crash-killed attempts count
    #: the cycles they ran before dying).  Empty on fault-free
    #: submissions, where every served input is one full service row.
    replica_busy_cycles: List[int] = field(default_factory=list)
    #: Resident-weights sessions: ``replica_load_cycles[r]`` is the
    #: weight-load phase replica ``r`` paid in THIS submission (0 when it
    #: was already warm or received no work).
    resident: bool = False
    replica_load_cycles: List[int] = field(default_factory=list)

    # -- availability --------------------------------------------------------
    @property
    def submitted(self) -> int:
        return self.batch

    @property
    def completed(self) -> int:
        return self.batch - len(self.dropped_indices)

    @property
    def dropped(self) -> int:
        return len(self.dropped_indices)

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.batch if self.batch else 0.0

    @property
    def goodput_inf_per_s(self) -> float:
        """Completed inferences per second over the makespan."""
        if self.completed == 0 or self.makespan_cycles <= 0:
            return 0.0
        return self.completed / (self.makespan_cycles * self.cycle_ns / 1e9)

    @property
    def offered_inf_per_s(self) -> float:
        """The arrival stream's demand rate over its release span."""
        if self.batch < 2:
            return 0.0
        span = max(self.releases) - min(self.releases)
        if span <= 0:
            return 0.0
        return (self.batch - 1) / (span * self.cycle_ns / 1e9)

    @property
    def latency_cycles(self) -> List[int]:
        """Per-request latency of *completed* requests, submission order."""
        dropped = set(self.dropped_indices)
        return [
            f - r
            for i, (f, r) in enumerate(
                zip(self.input_finishes, self.releases)
            )
            if i not in dropped
        ]

    def latency_percentile_cycles(self, pct: float) -> Optional[int]:
        """Nearest-rank percentile over *completed* requests.

        ``None`` when nothing completed: an all-dropped fleet has no
        latency distribution, and reporting "0 cycles" would read as a
        perfect one.
        """
        latencies = self.latency_cycles
        if not latencies:
            return None
        return latency_percentile(latencies, pct)

    @property
    def p50_latency_cycles(self) -> Optional[int]:
        return self.latency_percentile_cycles(50)

    @property
    def p95_latency_cycles(self) -> Optional[int]:
        return self.latency_percentile_cycles(95)

    @property
    def p99_latency_cycles(self) -> Optional[int]:
        return self.latency_percentile_cycles(99)

    @property
    def cycle_ns(self) -> float:
        return self.arch.chip.cycle_ns

    def _ms(self, cycles: int) -> float:
        return cycles * self.cycle_ns / 1e6

    def _optional_ms(self, cycles: Optional[int]) -> Optional[float]:
        return None if cycles is None else self._ms(cycles)

    @property
    def makespan_ms(self) -> float:
        return self._ms(self.makespan_cycles)

    @property
    def p50_latency_ms(self) -> Optional[float]:
        return self._optional_ms(self.p50_latency_cycles)

    @property
    def p95_latency_ms(self) -> Optional[float]:
        return self._optional_ms(self.p95_latency_cycles)

    @property
    def p99_latency_ms(self) -> Optional[float]:
        return self._optional_ms(self.p99_latency_cycles)

    @property
    def throughput_inf_per_s(self) -> float:
        """Sustained fleet rate actually achieved over the makespan.

        Counts *completed* requests only: a fault plan that drops work
        must not inflate the rate with inferences that never finished.
        Fault-free submissions have ``completed == batch``, so this is
        the classic definition there.
        """
        if self.completed == 0 or self.makespan_cycles <= 0:
            return 0.0
        return self.completed / (self.makespan_cycles * self.cycle_ns / 1e9)

    @property
    def saturation_inf_per_s(self) -> float:
        """The fleet ceiling: ``replicas`` inferences per bottleneck interval."""
        if self.steady_interval_cycles <= 0:
            return 0.0
        return self.replicas * 1e9 / (
            self.steady_interval_cycles * self.cycle_ns
        )

    @property
    def replica_batches(self) -> List[int]:
        return [report.batch for report in self.replica_reports]

    @property
    def replica_utilization(self) -> List[float]:
        """Mean shard busy fraction of the fleet makespan, per replica.

        Fault-free submissions use the exact closed form (every served
        input occupies each shard for its service row).  When the
        failover engine ran, busy cycles come from the recorded attempt
        windows instead (``replica_busy_cycles``): a full-service
        attempt charges one service row, and a crash-killed attempt
        charges the cycles it actually ran before dying -- counted once
        across the pipeline, an approximation that neither drops the
        partial work (the old bug) nor invents a phantom full row.
        """
        out = []
        for r, report in enumerate(self.replica_reports):
            if self.makespan_cycles <= 0 or report.num_shards == 0:
                out.append(0.0)
                continue
            if self.replica_busy_cycles:
                busy = self.replica_busy_cycles[r]
            else:
                busy = report.batch * sum(report.shard_cycles)
            out.append(busy / (report.num_shards * self.makespan_cycles))
        return out

    @property
    def total_energy_pj(self) -> float:
        return sum(self.energy_breakdown_pj.values())

    @property
    def total_energy_mj(self) -> float:
        return self.total_energy_pj / 1e9

    @property
    def energy_per_inference_mj(self) -> float:
        """Energy amortized over *completed* inferences (0 when none).

        A fault plan that drops requests must not dilute the per-
        inference cost over work that never finished.
        """
        if self.completed == 0:
            return 0.0
        return self.total_energy_mj / self.completed

    def to_dict(self) -> Dict:
        from repro.config import arch_fingerprint

        payload = {
            "arch_fingerprint": arch_fingerprint(self.arch),
            "tier": self.tier,
            "policy": self.policy,
            "replicas": int(self.replicas),
            "batch": int(self.batch),
            "arrival": self.arrival,
            "assignments": [int(a) for a in self.assignments],
            "releases": [int(c) for c in self.releases],
            "input_finishes": [int(c) for c in self.input_finishes],
            "latency_cycles": [int(c) for c in self.latency_cycles],
            "makespan_cycles": int(self.makespan_cycles),
            "makespan_ms": self.makespan_ms,
            "steady_interval_cycles": int(self.steady_interval_cycles),
            "p50_latency_cycles": self.p50_latency_cycles,
            "p95_latency_cycles": self.p95_latency_cycles,
            "p99_latency_cycles": self.p99_latency_cycles,
            "p50_latency_ms": self.p50_latency_ms,
            "p95_latency_ms": self.p95_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "throughput_inf_per_s": self.throughput_inf_per_s,
            "saturation_inf_per_s": self.saturation_inf_per_s,
            "replica_batches": self.replica_batches,
            "replica_utilization": [
                float(u) for u in self.replica_utilization
            ],
            "total_energy_mj": self.total_energy_mj,
            "energy_per_inference_mj": self.energy_per_inference_mj,
            "macs": int(self.macs),
            "instructions": int(self.instructions),
            "validated": self.validated,
            "energy_breakdown_pj": {
                k: float(v) for k, v in self.energy_breakdown_pj.items()
            },
            "submitted": int(self.submitted),
            "completed": int(self.completed),
            "dropped": int(self.dropped),
            "drop_rate": float(self.drop_rate),
            "dropped_indices": [int(i) for i in self.dropped_indices],
            "drop_reasons": {
                str(i): reason
                for i, reason in sorted(self.drop_reasons.items())
            },
            "attempt_counts": [int(c) for c in self.attempt_counts],
            "retries": int(self.retries),
            "goodput_inf_per_s": self.goodput_inf_per_s,
            "offered_inf_per_s": self.offered_inf_per_s,
            "fault_events": list(self.fault_events),
            "retry_policy": self.retry_policy,
            "replica_downtime": [
                list(windows) for windows in self.replica_downtime
            ],
            "replica_busy_cycles": [
                int(c) for c in self.replica_busy_cycles
            ],
        }
        if self.resident:
            payload["resident"] = True
            payload["replica_load_cycles"] = [
                int(c) for c in self.replica_load_cycles
            ]
        return payload

    def _latency_line(self, pct: int) -> str:
        cycles = self.latency_percentile_cycles(pct)
        if cycles is None:
            return f"latency p{pct}       : n/a (0 completed)"
        return (
            f"latency p{pct}       : {cycles:,} cycles "
            f"({self._ms(cycles):.3f} ms)"
        )

    def __str__(self) -> str:
        lines = [
            f"tier              : {self.tier}",
            f"replicas          : {self.replicas} (policy {self.policy})",
            f"inputs            : {self.batch} ({self.arrival})",
            f"makespan          : {self.makespan_cycles:,} cycles "
            f"({self.makespan_ms:.3f} ms)",
            f"sustained rate    : {self.throughput_inf_per_s:,.0f} inf/s "
            f"(fleet saturation {self.saturation_inf_per_s:,.0f} inf/s)",
            self._latency_line(50),
            self._latency_line(95),
            self._latency_line(99),
            f"energy            : {self.total_energy_mj:.4f} mJ "
            f"({self.energy_per_inference_mj:.4f} mJ/inference)",
        ]
        if self.resident:
            paid = ", ".join(
                f"r{r}={c:,}"
                for r, c in enumerate(self.replica_load_cycles)
            ) or "none"
            lines.append(f"resident load     : {paid} cycles")
        if self.attempt_counts:
            lines.append(
                f"conservation      : {self.submitted} submitted = "
                f"{self.completed} completed + {self.dropped} dropped"
            )
            lines.append(
                f"goodput           : {self.goodput_inf_per_s:,.0f} inf/s "
                f"(offered {self.offered_inf_per_s:,.0f} inf/s, "
                f"{self.retries} retries)"
            )
            if self.drop_reasons:
                reasons: Dict[str, int] = {}
                for reason in self.drop_reasons.values():
                    reasons[reason] = reasons.get(reason, 0) + 1
                detail = ", ".join(
                    f"{count}x {reason}"
                    for reason, count in sorted(reasons.items())
                )
                lines.append(f"drops             : {detail}")
            for r, windows in enumerate(self.replica_downtime):
                for window in windows:
                    end = window.get("end_cycle")
                    span = (
                        f"[{window['start_cycle']:,}, "
                        + (f"{end:,})" if end is not None else "inf)")
                    )
                    lines.append(
                        f"fault             : replica {r} "
                        f"{window['kind']} {span}"
                    )
        lines.append("replica load      :")
        for r, (b, util) in enumerate(
            zip(self.replica_batches, self.replica_utilization)
        ):
            lines.append(f"  replica {r}: {b} inputs, {100 * util:5.1f}% busy")
        return "\n".join(lines)


class Fleet:
    """R replicas of one compiled model behind a shared arrival stream.

    The model is compiled (or loaded from an artifact) exactly once; all
    replicas share the immutable compile product, which per-input
    isolation makes safe.  ``model`` accepts everything
    :class:`Deployment` does plus a path to a saved ``.artifact`` file::

        fleet = Fleet("model.artifact", replicas=4, policy="jsq")
        report = fleet.submit(batch=64, arrivals=FixedRate(8000))

    ``policy`` selects the dispatcher: ``"rr"`` (round-robin, input ``i``
    to replica ``i % R``) or ``"jsq"`` (join-shortest-queue on each
    replica's predicted in-flight count at release time, ties to the
    lowest index).  Each replica's sub-stream then runs through the
    ordinary :meth:`Deployment.submit` queueing law in the chosen
    fidelity tier, and the per-replica reports merge into a
    :class:`FleetReport`.  With ``replicas=1`` the submission is passed
    through unchanged, so the fleet is bit-identical to a plain
    deployment.
    """

    def __init__(
        self,
        model,
        arch: ArchLike = None,
        *,
        replicas: int = 1,
        policy: str = "rr",
        chips: int = 1,
        strategy: str = "dp",
        engine: Optional[str] = None,
        tier: str = "cyclesim",
        closure_limit: Optional[int] = None,
        resident_weights: bool = False,
        **model_kwargs,
    ):
        if replicas < 1:
            raise ConfigError(f"replicas must be >= 1, got {replicas}")
        if policy not in FLEET_POLICIES:
            raise ConfigError(
                f"unknown dispatch policy {policy!r}; expected one of "
                f"{FLEET_POLICIES}"
            )
        self.num_replicas = int(replicas)
        self.policy = policy
        if _is_artifact_path(model):
            if (
                model_kwargs or chips != 1 or strategy != "dp"
                or closure_limit is not None
            ):
                raise ConfigError(
                    "an artifact carries its own sharding and strategy; "
                    "pass Fleet(artifact_path) with no compile keywords"
                )
            self.deployment = Deployment.load(
                model, arch, tier=tier, engine=engine,
                resident_weights=resident_weights,
            )
        else:
            self.deployment = Deployment(
                model, arch, chips=chips, strategy=strategy, engine=engine,
                tier=tier, closure_limit=closure_limit,
                resident_weights=resident_weights, **model_kwargs,
            )
        #: Resident sessions: which replicas hold loaded weights.  All
        #: replicas share one compile product and (cyclesim) one loaded
        #: simulator state -- identical by determinism -- but each pays
        #: its own load phase, and a crash invalidates the crashed
        #: replica's entry so failover re-pays the load.
        self._replica_warm = [False] * self.num_replicas

    # -- introspection ------------------------------------------------------
    @property
    def arch(self) -> ArchConfig:
        return self.deployment.arch

    @property
    def graph(self) -> ComputationGraph:
        return self.deployment.graph

    @property
    def tier(self) -> str:
        return self.deployment.tier

    @property
    def num_chips(self) -> int:
        return self.deployment.num_chips

    def summary(self) -> str:
        return (
            f"{self.deployment.summary()}\n"
            f"  fleet: {self.num_replicas} replica(s), policy {self.policy}"
        )

    def serve_forever(
        self,
        *,
        clock=None,
        seed: int = 0,
        validate: bool = True,
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        """Open an async real-time serving session across the fleet.

        Like :meth:`Deployment.serve_forever`, with the fleet's rr/jsq
        dispatch and, when ``faults``/``retry`` are given, the failover
        engine routing each arrival online.  See :mod:`repro.runtime`.
        """
        from repro.runtime import serve_forever

        return serve_forever(
            self, clock=clock, seed=seed, validate=validate,
            faults=faults, retry=retry,
        )

    # -- dispatch -----------------------------------------------------------
    def _service_profile(self):
        """(per-shard cycle row, transfer edges) of one input."""
        return self.deployment._service_profile()

    def _dispatch(self, releases: Sequence[int]) -> List[int]:
        if self.policy == "rr":
            return [i % self.num_replicas for i in range(len(releases))]
        row, edges = self._service_profile()
        dispatcher = _Dispatcher(
            self.policy, self.num_replicas, row, edges, self.arch.interchip
        )
        return [dispatcher.route(release) for release in releases]

    # -- submission ---------------------------------------------------------
    def submit(
        self,
        inputs=None,
        *,
        batch: int = 1,
        arrivals: Optional[Union[ArrivalProcess, Sequence[int]]] = None,
        seed: int = 0,
        validate: bool = True,
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> FleetReport:
        """Submit one stream, dispatched across the replicas.

        Arguments follow :meth:`Deployment.submit` exactly.  Inputs are
        drawn (or taken) at the *fleet* level in global submission
        order, then routed: replica sub-streams keep their global
        release cycles, so the merged report's latencies are what the
        clients of the whole fleet observe.

        ``faults`` injects a deterministic :class:`~repro.faults.
        FaultPlan`; ``retry`` overrides the plan's embedded
        :class:`~repro.faults.RetryPolicy`.  With a plan or policy in
        play the submission runs through the failover engine
        (:func:`repro.faults.run_fault_schedule`): dead replicas stop
        receiving work, failed attempts are retried on survivors, and
        undeliverable requests are recorded as dropped (conservation:
        ``submitted == completed + dropped``).  ``faults=None`` (or an
        empty plan with no retry policy) takes the unfaulted path,
        bit-identical to a fault-free fleet in both tiers.
        """
        if arrivals is None:
            arrivals = BackToBack()
        elif not isinstance(arrivals, ArrivalProcess):
            arrivals = TraceArrivals(arrivals)

        engine_needed = retry is not None or (
            faults is not None
            and not (faults.is_empty and faults.retry is None)
        )
        if engine_needed:
            return self._submit_faulted(
                inputs, batch, arrivals, seed, validate,
                faults if faults is not None else FaultPlan(), retry,
            )

        if self.num_replicas == 1:
            if self.deployment.resident_weights:
                self.deployment._resident_loaded = self._replica_warm[0]
            report = self.deployment.submit(
                inputs, batch=batch, arrivals=arrivals, seed=seed,
                validate=validate,
            )
            if self.deployment.resident_weights and report.batch:
                self._replica_warm[0] = True
            return self._merge([report], [0] * report.batch, report.releases)

        if isinstance(arrivals, TraceArrivals) and batch == 1:
            batch = len(arrivals)
        if batch == 0:
            empty = [
                self.deployment._empty_report(arrivals)
                for _ in range(self.num_replicas)
            ]
            return self._merge(empty, [], [])
        if batch < 1:
            raise ConfigError(f"batch must be >= 1, got {batch}")

        resolved = None
        if self.deployment.tier == "fast":
            if inputs is not None:
                batch = len(
                    _resolve_batch_inputs(self.graph, inputs, batch, seed)
                )
        else:
            resolved = _resolve_batch_inputs(self.graph, inputs, batch, seed)
            batch = len(resolved)
        releases = arrivals.release_cycles(batch, self.arch.chip.cycle_ns)
        assignments = self._dispatch(releases)

        reports: List[ServeReport] = []
        for replica in range(self.num_replicas):
            index = [i for i, a in enumerate(assignments) if a == replica]
            sub_arrivals = TraceArrivals([releases[i] for i in index])
            sub_inputs = (
                [resolved[i] for i in index] if resolved is not None else None
            )
            if self.deployment.resident_weights:
                # Each replica tracks its own warmth; the shared
                # deployment's accounting flag is set per sub-stream.
                self.deployment._resident_loaded = self._replica_warm[replica]
            reports.append(
                self.deployment.submit(
                    sub_inputs, batch=1, arrivals=sub_arrivals, seed=seed,
                    validate=validate,
                )
            )
            if self.deployment.resident_weights and reports[-1].batch:
                self._replica_warm[replica] = True
        return self._merge(reports, assignments, releases, arrivals)

    def run_trace(
        self,
        trace: Union[TraceArrivals, Sequence[int]],
        inputs=None,
        *,
        seed: int = 0,
        validate: bool = True,
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> FleetReport:
        """Replay a recorded arrival trace across the fleet."""
        if not isinstance(trace, TraceArrivals):
            trace = TraceArrivals(trace)
        return self.submit(
            inputs, batch=len(trace) or 1, arrivals=trace, seed=seed,
            validate=validate, faults=faults, retry=retry,
        ) if len(trace) else self.submit(
            inputs, batch=0, arrivals=trace, seed=seed, validate=validate,
            faults=faults, retry=retry,
        )

    # -- fault-injected submission -----------------------------------------
    def _submit_faulted(
        self,
        inputs,
        batch: int,
        arrivals: ArrivalProcess,
        seed: int,
        validate: bool,
        plan: FaultPlan,
        retry: Optional[RetryPolicy],
    ) -> FleetReport:
        """Run one stream through the failover engine.

        Both tiers share :func:`repro.faults.run_fault_schedule` fed
        with the one-input service profile (timing is data-independent
        under per-input isolation).  The cyclesim tier then executes
        each request that received at least one full-service attempt
        exactly once on the exact simulator (bit-exact golden
        validation) and charges its measured energy once per
        full-service attempt; crash-killed attempts lose their partial
        work and are not charged.  A replica's admitted attempts replay
        through :func:`repro.sim.multichip.streaming_schedule` with the
        plan's timing hooks and must reproduce the engine's finish
        cycles exactly -- the cycle-exact tier-equivalence contract.
        """
        rp = retry if retry is not None else (plan.retry or RetryPolicy())
        dep = self.deployment
        if isinstance(arrivals, TraceArrivals) and batch == 1:
            batch = len(arrivals)
        if batch < 0:
            raise ConfigError(f"batch must be >= 0, got {batch}")

        resolved = None
        if dep.tier == "fast":
            if inputs is not None:
                batch = len(
                    _resolve_batch_inputs(self.graph, inputs, batch, seed)
                )
        elif batch:
            resolved = _resolve_batch_inputs(self.graph, inputs, batch, seed)
            batch = len(resolved)

        fault_fields = dict(
            fault_events=[e.to_dict() for e in plan.events],
            retry_policy=rp.to_dict(),
            replica_downtime=plan.replica_timeline(self.num_replicas),
        )
        if batch == 0:
            empty = [
                dep._empty_report(TraceArrivals([]))
                for _ in range(self.num_replicas)
            ]
            return self._merge(empty, [], [], arrivals, **fault_fields)

        link = self.arch.interchip
        row, edges = self._service_profile()
        releases = arrivals.release_cycles(batch, self.arch.chip.cycle_ns)
        load_done, load_energy, load_macs, load_instr = 0, {}, 0, 0
        offsets = None
        if dep.resident_weights:
            load_done, load_energy, load_macs, load_instr = (
                dep._resident_load_profile()
            )
            offsets = [
                0 if self._replica_warm[r] else load_done
                for r in range(self.num_replicas)
            ]
        schedule = run_fault_schedule(
            releases, row, edges, link, self.num_replicas, self.policy,
            plan, rp, load_offsets=offsets,
        )
        # Which replicas paid their weight-load phase in this submission
        # (cold + received work); crashes then invalidate resident
        # weights, so failback re-pays the load next time.
        cold_paid = [
            dep.resident_weights
            and not self._replica_warm[r]
            and bool(schedule.replica_attempts[r])
            for r in range(self.num_replicas)
        ]
        if dep.resident_weights:
            for r in range(self.num_replicas):
                if plan.crash_cycle(r) is not None:
                    self._replica_warm[r] = False
                elif cold_paid[r]:
                    self._replica_warm[r] = True

        # Busy cycles from the actually-executed attempt windows: full-
        # service attempts charge one service row, crash-killed attempts
        # the cycles they ran before dying (counted once).
        busy_cycles = []
        for r in range(self.num_replicas):
            busy = 0
            for a in schedule.replica_attempts[r]:
                if a.full_service:
                    busy += sum(row)
                else:
                    busy += max(0, a.finish_cycle - a.start_cycle)
            busy_cycles.append(busy)

        validated = False
        if dep.tier == "cyclesim":
            req_reports, req_outputs, interchip_per_input = (
                self._execute_faulted_requests(schedule, resolved)
            )
            if validate:
                graph = self.graph
                input_tensor = graph.input_operators[0].output
                for i in sorted(req_outputs):
                    expected = golden_outputs(
                        graph, {input_tensor: resolved[i]}
                    )
                    _validate_outputs(
                        graph, req_outputs[i], expected,
                        f"faulted serve, input {i}",
                    )
                validated = True
        else:
            req_reports, interchip_per_input = None, 0

        reports: List[ServeReport] = []
        for r in range(self.num_replicas):
            reports.append(
                self._faulted_replica_report(
                    r, schedule, row, edges, link, plan, req_reports,
                    interchip_per_input, validated,
                    load_extra=(
                        (load_done, load_energy, load_macs, load_instr)
                        if cold_paid[r] else None
                    ),
                )
            )

        energy: Dict[str, float] = {}
        for report in reports:
            for key, value in report.energy_breakdown_pj.items():
                energy[key] = energy.get(key, 0.0) + value
        served = [r for r in reports if r.batch]
        return FleetReport(
            arch=self.arch,
            tier=self.tier,
            policy=self.policy,
            replicas=self.num_replicas,
            batch=batch,
            arrival=arrivals.describe(),
            assignments=list(schedule.assignments),
            releases=list(releases),
            input_finishes=list(schedule.finishes),
            makespan_cycles=schedule.makespan,
            steady_interval_cycles=steady_state_interval(row, edges, link),
            replica_reports=reports,
            energy_breakdown_pj=energy,
            macs=sum(r.macs for r in reports),
            instructions=sum(r.instructions for r in reports),
            validated=bool(served) and all(r.validated for r in served),
            dropped_indices=list(schedule.dropped),
            drop_reasons=dict(schedule.drop_reasons),
            attempt_counts=list(schedule.attempt_counts),
            retries=schedule.retries,
            replica_busy_cycles=busy_cycles,
            resident=dep.resident_weights,
            replica_load_cycles=(
                [
                    load_done if cold_paid[r] else 0
                    for r in range(self.num_replicas)
                ]
                if dep.resident_weights else []
            ),
            **fault_fields,
        )

    def _execute_faulted_requests(self, schedule, resolved):
        """Cyclesim functional half: run each surviving request once.

        A request with at least one full-service attempt executed on
        real hardware; per-input isolation makes one execution's report
        and outputs exact for every full-service attempt of that
        request (crash-killed attempts never finished and are excluded).
        """
        dep = self.deployment
        graph = self.graph
        input_tensor = graph.input_operators[0].output
        wanted = sorted({
            a.request for a in schedule.attempts if a.full_service
        })
        req_reports: Dict[int, list] = {}
        req_outputs: Dict[int, Dict] = {}
        if dep.resident_weights:
            # Resident sessions execute surviving requests warm (load-
            # free); outputs stay bit-identical to isolated full runs.
            per_reports, per_outputs = dep._resident_execute(
                [resolved[i] for i in wanted]
            )
            for j, i in enumerate(wanted):
                req_reports[i] = per_reports[j]
                req_outputs[i] = per_outputs[j]
            interchip_per_input = (
                dep.compiled.interchip_bytes()
                if isinstance(dep.compiled, MultiChipModel) else 0
            )
        elif isinstance(dep.compiled, MultiChipModel):
            sim = MultiChipSimulator(dep.compiled, engine=dep.engine)
            for i in wanted:
                reports, outputs = sim.execute_stream(
                    [resolved[i]], input_tensor
                )
                req_reports[i] = reports[0]
                req_outputs[i] = outputs[0]
            interchip_per_input = dep.compiled.interchip_bytes()
        else:
            for i in wanted:
                report, outputs = _run_single_chip(
                    dep.compiled, resolved[i], dep.engine
                )
                req_reports[i] = [report]
                req_outputs[i] = outputs
            interchip_per_input = 0
        return req_reports, req_outputs, interchip_per_input

    def _faulted_replica_report(
        self, replica, schedule, row, edges, link, plan, req_reports,
        interchip_per_input, validated, load_extra=None,
    ) -> ServeReport:
        """One replica's ServeReport under the fault plan.

        Replays the replica's admitted dispatch cycles through the
        hooked streaming recurrence and asserts the replay reproduces
        the engine's finish cycles (cycle-exact contract); energy/MACs
        charge one full per-inference cost per full-service attempt.
        ``load_extra`` (resident sessions; ``(cycles, energy, macs,
        instructions)``) adds the weight-load phase a cold replica paid
        before its first attempt.
        """
        dep = self.deployment
        records = schedule.replica_attempts[replica]
        full = [a for a in records if a.full_service]
        if not full:
            report = dep._empty_report(TraceArrivals([]))
            if load_extra is not None:
                # The replica loaded its weights but every attempt was
                # crash-killed: the load cost is still real.
                ld, le, lm, li = load_extra
                report.energy_breakdown_pj = dict(le)
                report.macs = lm
                report.instructions = li
                report.resident = True
                report.load_cycles = ld
                report.load_energy_pj = dict(le)
            return report

        service_time, link_time = plan.schedule_hooks(replica, link)
        starts, _, input_fin, _ = streaming_schedule(
            [list(row) for _ in records], edges, link,
            [a.dispatch_cycle for a in records], service_time, link_time,
        )
        for j, record in enumerate(records):
            if record.full_service and input_fin[j] != record.finish_cycle:
                raise SimulationError(
                    f"fault replay diverged on replica {replica}: attempt "
                    f"{record.request}/{record.attempt} replayed to cycle "
                    f"{input_fin[j]}, engine predicted "
                    f"{record.finish_cycle}"
                )
        full_idx = [j for j, a in enumerate(records) if a.full_service]
        makespan = max(
            min(a.finish_cycle, input_fin[j]) for j, a in enumerate(records)
        )

        if dep.tier == "cyclesim":
            per_reports = [req_reports[a.request] for a in full]
            flat = [rep for reports in per_reports for rep in reports]
            energy = merge_shard_energy(
                [rep.energy_breakdown_pj for rep in flat],
                interchip_per_input * len(full), link,
            )
            macs = sum(rep.macs for rep in flat)
            instructions = sum(rep.instructions for rep in flat)
        else:
            shard_reports = dep._fast_shard_reports()
            interchip_total = sum(nbytes for _, _, nbytes in edges)
            per_input = merge_shard_energy(
                [r.energy_breakdown_pj for r in shard_reports],
                interchip_total, link,
            )
            energy = {k: v * len(full) for k, v in per_input.items()}
            macs = sum(r.macs for r in shard_reports) * len(full)
            instructions = 0
            validated = False

        load_cycles = 0
        load_energy: Dict[str, float] = {}
        if load_extra is not None:
            load_cycles, load_energy, load_macs, load_instr = load_extra
            energy = dict(energy)
            for key, value in load_energy.items():
                energy[key] = energy.get(key, 0.0) + value
            macs += load_macs
            instructions += load_instr

        return ServeReport(
            arch=self.arch,
            tier=dep.tier,
            batch=len(full),
            arrival=f"trace[{len(full)}]",
            releases=[records[j].dispatch_cycle for j in full_idx],
            service_starts=[
                (starts[j][0] if starts[j] else records[j].dispatch_cycle)
                for j in full_idx
            ],
            input_finishes=[input_fin[j] for j in full_idx],
            makespan_cycles=makespan,
            steady_interval_cycles=steady_state_interval(row, edges, link),
            shard_cycles=list(row),
            shard_utilization=_shard_utilization(
                [list(row) for _ in full], makespan
            ),
            energy_breakdown_pj=energy,
            macs=macs,
            instructions=instructions,
            validated=validated,
            resident=dep.resident_weights,
            load_cycles=load_cycles,
            load_energy_pj=load_energy,
        )

    def _merge(
        self,
        reports: List[ServeReport],
        assignments: List[int],
        releases: List[int],
        arrivals: Optional[ArrivalProcess] = None,
        **fault_fields,
    ) -> FleetReport:
        finishes = [0] * len(assignments)
        cursor = [0] * len(reports)
        for i, replica in enumerate(assignments):
            finishes[i] = reports[replica].input_finishes[cursor[replica]]
            cursor[replica] += 1
        if self.deployment.resident_weights and "resident" not in fault_fields:
            fault_fields = dict(fault_fields)
            fault_fields["resident"] = True
            fault_fields["replica_load_cycles"] = [
                r.load_cycles for r in reports
            ]
        energy: Dict[str, float] = {}
        for report in reports:
            for key, value in report.energy_breakdown_pj.items():
                energy[key] = energy.get(key, 0.0) + value
        served = [r for r in reports if r.batch]
        return FleetReport(
            arch=self.arch,
            tier=self.tier,
            policy=self.policy,
            replicas=self.num_replicas,
            batch=len(assignments),
            arrival=(
                arrivals.describe() if arrivals is not None
                else reports[0].arrival
            ),
            assignments=list(assignments),
            releases=list(releases),
            input_finishes=finishes,
            makespan_cycles=max((r.makespan_cycles for r in reports), default=0),
            steady_interval_cycles=max(
                (r.steady_interval_cycles for r in reports), default=0
            ),
            replica_reports=reports,
            energy_breakdown_pj=energy,
            macs=sum(r.macs for r in reports),
            instructions=sum(r.instructions for r in reports),
            validated=bool(served) and all(r.validated for r in served),
            **fault_fields,
        )


def _is_artifact_path(model) -> bool:
    """Whether ``model`` names a saved artifact file."""
    from pathlib import Path

    if not isinstance(model, (str, Path)):
        return False
    path = Path(model)
    if path.suffix == ".artifact":
        return True
    if not path.is_file():
        return False
    from repro.artifact import MAGIC

    with open(path, "rb") as handle:
        return handle.read(len(MAGIC)) == MAGIC
