"""Cycle-level simulator perf-regression harness: engine vs interpreter.

Times the hot-block execution engine (:mod:`repro.sim.blockengine`, the
default) against the legacy per-instruction interpreter
(``REPRO_SIM_ENGINE=interp``) on three workload classes and writes
``BENCH_cyclesim.json`` so the performance trajectory is tracked
PR-over-PR (CI uploads it as a non-gating artifact):

- ``hot_loop``: every core runs a counted conv-style inner loop (the
  paper's generated-code hot path: ``CIM_MVM`` + requantise + pointer
  bumps + ``BLT``).  Dispatch-bound, so it isolates what the engine is
  for; gated at >= 10x.
- compiled models (``resnet18``, ``mobilenetv2``): end-to-end compiled
  stacks where irreducible NumPy dataflow and NoC modelling bound the
  achievable speedup; gated only on bit-identical reports.
- ``weight_stream``: multipass weight-streaming conv branches whose
  loop bodies carry a global ``MEM_CPY`` + ``CIM_LOAD`` per pass -- the
  iteration-major NoC replay path.  The ``noc_batch_*`` engine stats
  are asserted non-degenerate here so a silent bailout-to-stepped
  regression fails this job instead of just slowing the engine down.
- the historical fast-model anchor (bit-exact golden validation plus an
  order-of-magnitude latency agreement between the cycle simulator and
  the analytic model).

Every timed pair also asserts the exactness contract: identical
``SimulationReport`` fields (cycles, energy breakdown, utilization, NoC
counters, instruction counts) from both engines.

``REPRO_BENCH_TINY=1`` switches the harness to smoke scale: shorter
loops and smaller model inputs with relaxed speedup gates (the
bit-identity asserts are unchanged).  CI runs this tiny invocation as a
separate fast job so every PR records a ``BENCH_cyclesim.json``
artifact even when the full tier-1 run stops early.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import compile_model
from repro.config import default_arch
from repro.config.arch import GLOBAL_BASE
from repro.isa import ProgramBuilder, SReg
from repro.sim import blockengine
from repro.sim.chip import ChipSimulator
from repro.sim.fastmodel import analyze_plan

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_cyclesim.json"
_RESULTS = {}

#: Timing rounds per engine (minimum is reported).
ROUNDS = 2

#: Smoke scale: short loops, small inputs, relaxed speedup gates.
TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")

#: (hot-loop iterations, model input size, model classes, anchor input).
HOT_ITERS, MODEL_INPUT, MODEL_CLASSES, ANCHOR_INPUT = (
    (150, 16, 10, 16) if TINY else (1500, 64, 100, 32)
)

#: Parallel multipass conv branches in the weight-streaming workload.
STREAM_BRANCHES = 4 if TINY else 16


def _report_fields(report):
    return {
        "cycles": report.cycles,
        "instructions": report.instructions,
        "macs": report.macs,
        "energy_breakdown_pj": report.energy_breakdown_pj,
        "utilization": report.utilization,
        "noc_bytes": report.noc_bytes,
        "noc_byte_hops": report.noc_byte_hops,
    }


def _time_engine(make_sim, engine):
    best = None
    report = None
    for _ in range(ROUNDS):
        sim = make_sim(engine)
        t0 = time.perf_counter()
        report = sim.run()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, report


def _bench_pair(name, make_sim):
    """Time both engines, assert bit-identical reports, record results."""
    make_sim("block").run()  # warm shape/block caches outside the clock
    blockengine.reset_stats()
    t_block, r_block = _time_engine(make_sim, "block")
    stats = dict(blockengine.ENGINE_STATS)
    t_interp, r_interp = _time_engine(make_sim, "interp")
    assert _report_fields(r_interp) == _report_fields(r_block), (
        f"{name}: engine reports diverge from the interpreter"
    )
    speedup = t_interp / t_block
    entry = {
        "interp_s": round(t_interp, 4),
        "engine_s": round(t_block, 4),
        "speedup": round(speedup, 2),
        "instructions": int(r_block.instructions),
        "cycles": int(r_block.cycles),
        "interp_instr_per_s": round(r_block.instructions / t_interp),
        "engine_instr_per_s": round(r_block.instructions / t_block),
        "interp_cycles_per_s": round(r_block.cycles / t_interp),
        "engine_cycles_per_s": round(r_block.cycles / t_block),
        "engine_stats": stats,  # accumulated over the timing rounds
    }
    _RESULTS[name] = entry
    print(
        f"\n{name}: interp {t_interp:.2f}s vs engine {t_block:.3f}s "
        f"-> {speedup:.1f}x ({r_block.instructions:,} instructions, "
        f"{r_block.cycles:,} cycles, bit-identical)"
    )
    return entry


def _hot_loop_program(iters=HOT_ITERS, rows=64, cols=16):
    """Per-core counted loop mirroring the paper's generated inner loop."""
    b = ProgramBuilder()
    b.li(1, GLOBAL_BASE)
    b.li(2, 0)
    b.li(3, rows * cols)
    b.emit("MEM_CPY", rs=1, rt=2, rd=3)             # weight tile -> local
    b.set_sreg(SReg.MVM_ROWS, 10, rows)
    b.set_sreg(SReg.MVM_COLS, 10, cols)
    b.li(4, 0)
    b.li(5, 0)
    b.emit("CIM_LOAD", rs=4, rt=5)
    b.set_sreg(SReg.QMUL, 10, 3)
    b.set_sreg(SReg.QSHIFT, 10, 8)
    b.li(6, 4096)                                   # input pointer
    b.li(7, 8192)                                   # accumulator
    b.li(8, 10000)                                  # output pointer
    b.li(21, cols)
    b.li(1, 0)
    b.li(2, iters)
    with b.loop(1, 2):
        b.emit("CIM_MVM", rs=6, rt=5, re=7, flags=0)
        b.emit("VEC_QNT", rs=7, rd=8, re=21)
        b.emit("SC_ADDIW", rs=6, rt=6, offset=1)
        b.emit("SC_ADDIW", rs=8, rt=8, offset=cols)
    b.halt()
    return b.finalize()


def test_bench_hot_loop_engine_speedup():
    """Dispatch-bound hot path: the engine must be >= 10x the interpreter."""
    arch = default_arch()
    rng = np.random.default_rng(7)
    image = rng.integers(-128, 128, 64 * 16, dtype=np.int8).view(np.uint8)
    program = _hot_loop_program()
    programs = {cid: program for cid in range(arch.chip.num_cores)}

    def make_sim(engine):
        return ChipSimulator(
            arch, programs, global_image=image, engine=engine
        )

    entry = _bench_pair("hot_loop", make_sim)
    # At smoke scale the per-run engine set-up amortises over far fewer
    # iterations, so only a loose floor is gated; full scale keeps 10x.
    floor = 2.0 if TINY else 10.0
    assert entry["speedup"] >= floor, (
        f"hot-block engine regressed to {entry['speedup']:.1f}x on the "
        f"dispatch-bound loop workload (>= {floor}x required)"
    )


@pytest.mark.parametrize("model", ["resnet18", "mobilenetv2"])
def test_bench_model_engine_speedup(model):
    """End-to-end compiled models: bit-identical, speedup tracked."""
    compiled = compile_model(
        model, arch=default_arch(), strategy="generic",
        input_size=MODEL_INPUT, num_classes=MODEL_CLASSES,
    )

    def make_sim(engine):
        sim = ChipSimulator.from_compiled(compiled, engine=engine)
        return sim

    entry = _bench_pair(f"{model}@{MODEL_INPUT}", make_sim)
    # End-to-end stacks include irreducible NumPy dataflow + NoC
    # modelling, and wall-clock ratios near 1 are noise-prone on shared
    # CI runners -- gate only against catastrophic engine regressions;
    # the magnitude is tracked (non-gating) in BENCH_cyclesim.json.
    assert entry["speedup"] > (0.2 if TINY else 0.3)


def test_bench_weight_stream_engine_speedup():
    """Multipass weight-streaming convs: the iteration-major NoC replay
    path must engage (non-zero batched NoC windows, zero contention
    bailouts on this contention-free mapping) and beat the interpreter.
    """
    compiled = compile_model(
        "weight_stream", arch=default_arch(), strategy="generic",
        branches=STREAM_BRANCHES,
    )

    def make_sim(engine):
        return ChipSimulator.from_compiled(compiled, engine=engine)

    entry = _bench_pair(f"weight_stream@{STREAM_BRANCHES}x", make_sim)
    stats = entry["engine_stats"]
    assert stats["noc_batch_attempts"] > 0, (
        "weight-streaming loops never attempted NoC replay -- the "
        "multipass bodies regressed to per-iteration stepping"
    )
    assert stats["noc_batch_successes"] == stats["noc_batch_attempts"], (
        f"NoC replay silently bailed out on a contention-free workload: "
        f"{stats['noc_batch_successes']}/{stats['noc_batch_attempts']} "
        f"windows committed"
    )
    assert stats["noc_batch_contention_bailouts"] == 0
    floor = 1.3 if TINY else 2.5
    assert entry["speedup"] >= floor, (
        f"weight-streaming engine speedup regressed to "
        f"{entry['speedup']:.1f}x (>= {floor}x required)"
    )


def test_bench_cyclesim_fastmodel_anchor():
    """Historical anchor: golden-validated run + fast-model agreement."""
    from repro import run_workflow

    result = run_workflow(
        "resnet18", arch=default_arch(), strategy="generic",
        input_size=ANCHOR_INPUT, num_classes=MODEL_CLASSES,
    )
    assert result.validated
    fast = analyze_plan(result.compiled.plan)
    ratio = fast.cycles / result.report.cycles
    r = result.report
    print(
        f"\nresnet18@{ANCHOR_INPUT}: cycle-sim {r.cycles:,} cycles / "
        f"{r.total_energy_mj:.3f} mJ / {r.instructions:,} instructions; "
        f"fast model {fast.cycles:,} cycles (ratio {ratio:.2f})"
    )
    # At small inputs the per-instruction scalar set-up dominates, so the
    # row-granular fast model under-predicts; the anchor only requires
    # order-of-magnitude agreement here.
    assert 0.02 < ratio < 20.0
    assert r.macs > 0
    assert r.utilization["cim"] > 0


def test_bench_resident_serving_warm_rate():
    """Resident-weights serving on the weight-streaming workload: the
    warm sustained rate (weights already loaded) must strictly beat the
    reload-per-input baseline, with bit-identical outputs and the
    steady-state law ``cold = load + warm`` exact.  The warm-rate gain
    is recorded in ``BENCH_cyclesim.json`` so the amortisation
    trajectory is tracked PR-over-PR.

    The gain is structurally small here: multipass cores re-stream
    their weight tiles every pass by design, so only single-stage
    cores' prologues are hoistable -- but it must stay strictly > 1x
    (integer cycle counts make this deterministic, not noise-gated).
    """
    from repro.serve import Deployment

    compiled = compile_model(
        "weight_stream", arch=default_arch(), strategy="generic",
        branches=STREAM_BRANCHES,
    )
    batch = 4
    plain = Deployment(compiled).submit(batch=batch, seed=11)
    session = Deployment(compiled, resident_weights=True)
    # First submission pays the one-time weight load; the second replays
    # activation traffic only.
    cold = session.submit(batch=batch, seed=11)
    warm = session.submit(batch=batch, seed=11)

    for a, b in zip(warm.per_input_outputs, plain.per_input_outputs):
        assert set(a) == set(b)
        for tensor in a:
            np.testing.assert_array_equal(a[tensor], b[tensor])
    assert cold.load_cycles > 0
    assert warm.load_cycles == 0
    assert cold.makespan_cycles == cold.load_cycles + warm.makespan_cycles
    gain = warm.throughput_inf_per_s / plain.throughput_inf_per_s
    assert gain > 1.0, (
        f"resident warm rate regressed to {gain:.3f}x the reload-per-"
        f"input baseline (must be strictly > 1x)"
    )
    _RESULTS[f"weight_stream_resident@{STREAM_BRANCHES}x"] = {
        "batch": batch,
        "load_cycles": int(cold.load_cycles),
        "cold_makespan_cycles": int(cold.makespan_cycles),
        "warm_makespan_cycles": int(warm.makespan_cycles),
        "plain_inf_per_s": round(plain.throughput_inf_per_s),
        "warm_inf_per_s": round(warm.throughput_inf_per_s),
        "warm_rate_gain": round(gain, 3),
    }
    print(
        f"\nweight_stream_resident@{STREAM_BRANCHES}x: warm "
        f"{warm.throughput_inf_per_s:,.0f} inf/s vs reload-per-input "
        f"{plain.throughput_inf_per_s:,.0f} inf/s -> {gain:.2f}x "
        f"(load {cold.load_cycles:,} cycles, bit-identical)"
    )


def test_bench_write_results():
    """Persist BENCH_cyclesim.json (runs last; non-gating artifact)."""
    if not _RESULTS:
        pytest.skip("no benchmark results collected")
    payload = {
        "benchmark": "cyclesim_engine_vs_interp",
        "rounds": ROUNDS,
        "tiny": TINY,
        "workloads": _RESULTS,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {RESULTS_PATH}")
