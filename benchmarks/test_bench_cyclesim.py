"""Cycle-accurate simulator cross-check at reduced resolution.

The figure sweeps run on the fast analytic model at 224x224 (DESIGN.md
substitution #5); this benchmark anchors that model against the
instruction-level cycle simulator: the full ResNet18 and MobileNetV2
stacks are compiled, executed instruction by instruction, validated
bit-exactly against the golden model, and compared with the fast model's
latency prediction for the same plan.
"""

from repro import run_workflow
from repro.config import default_arch
from repro.sim.fastmodel import analyze_plan


def _cross_check(model, input_size=32):
    result = run_workflow(
        model, arch=default_arch(), strategy="generic",
        input_size=input_size, num_classes=100,
    )
    assert result.validated
    fast = analyze_plan(result.compiled.plan)
    ratio = fast.cycles / result.report.cycles
    return result, fast, ratio


def test_bench_cyclesim_resnet18(benchmark):
    result, fast, ratio = benchmark.pedantic(
        lambda: _cross_check("resnet18"), rounds=1, iterations=1
    )
    r = result.report
    print(
        f"\nresnet18@32: cycle-sim {r.cycles:,} cycles / "
        f"{r.total_energy_mj:.3f} mJ / {r.instructions:,} instructions; "
        f"fast model {fast.cycles:,} cycles (ratio {ratio:.2f})"
    )
    # At 32 px the per-instruction scalar set-up the cycle simulator tracks
    # dominates (tiny rows), so the row-granular model under-predicts; the
    # anchor only requires order-of-magnitude agreement here.  At the tiny
    # scales of tests/test_fastmodel.py agreement is within 0.2-5x.
    assert 0.02 < ratio < 20.0
    assert r.macs > 0
    assert r.utilization["cim"] > 0


def test_bench_cyclesim_mobilenetv2(benchmark):
    result, fast, ratio = benchmark.pedantic(
        lambda: _cross_check("mobilenetv2"), rounds=1, iterations=1
    )
    r = result.report
    print(
        f"\nmobilenetv2@32: cycle-sim {r.cycles:,} cycles / "
        f"{r.total_energy_mj:.3f} mJ; fast model {fast.cycles:,} "
        f"(ratio {ratio:.2f})"
    )
    assert 0.02 < ratio < 20.0
