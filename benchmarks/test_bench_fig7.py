"""Fig. 7: the SW/HW design space, generic vs optimized mapping.

Paper claims reproduced (shape):

- optimized (DP) mapping points dominate the generic-mapping points of the
  same hardware configuration (higher throughput);
- compiler optimization compresses (or inverts) the spread between
  hardware configurations: the throughput ratio between the best and worst
  hardware point shrinks under the optimized mapping, showing why isolated
  HW-only or SW-only exploration misses co-design opportunities.
"""

from repro.explore import evaluate_fast


def test_bench_fig7(benchmark, fig7_results):
    print("\nFig. 7: design space (energy mJ, throughput TOPS) by MG/flit")
    for model, by_strategy in fig7_results.items():
        for strategy, points in by_strategy.items():
            for pt in points:
                print(
                    f"{model:<16s}{strategy:>8s}  MG={pt.mg_size:<3d}"
                    f"flit={pt.flit_bytes:<3d} E={pt.energy_mj:8.2f} "
                    f"TOPS={pt.tops:7.2f}"
                )

    for model, by_strategy in fig7_results.items():
        generic = {(p.mg_size, p.flit_bytes): p for p in by_strategy["generic"]}
        optimized = {(p.mg_size, p.flit_bytes): p for p in by_strategy["dp"]}

        # optimized mapping dominates per hardware configuration
        wins = sum(
            1 for key in generic if optimized[key].tops >= generic[key].tops
        )
        assert wins >= len(generic) - 1, (
            f"{model}: optimized mapping should dominate ({wins}/{len(generic)})"
        )

        # compiler optimization narrows the hardware spread
        def spread(points):
            tops = [p.tops for p in points.values()]
            return max(tops) / min(tops)

        assert spread(optimized) <= spread(generic) * 1.10, (
            f"{model}: optimization should compress the HW spread "
            f"({spread(optimized):.2f} vs {spread(generic):.2f})"
        )

    benchmark.pedantic(
        lambda: evaluate_fast("resnet18", strategy="dp", input_size=224),
        rounds=1, iterations=1,
    )
