"""Shared, session-cached computations for the benchmark harness.

The figure benchmarks share expensive sweeps (Fig. 5's strategy grid,
Fig. 6/7's architecture sweeps); session fixtures compute each once.
"""

import pytest

from repro.explore import design_space, mg_flit_sweep, strategy_comparison

#: Paper-scale resolution used by the figure sweeps (fast analytic model).
INPUT_SIZE = 224
NUM_CLASSES = 1000


@pytest.fixture(scope="session")
def fig5_results():
    """Fig. 5 grid: 4 models x 3 strategies at the default architecture."""
    return strategy_comparison(
        ["resnet18", "vgg19", "mobilenetv2", "efficientnetb0"],
        input_size=INPUT_SIZE,
        num_classes=NUM_CLASSES,
    )


@pytest.fixture(scope="session")
def fig6_results():
    """Fig. 6 sweep: MG size x flit width, generic mapping."""
    return {
        model: mg_flit_sweep(
            model, "generic", input_size=INPUT_SIZE, num_classes=NUM_CLASSES
        )
        for model in ("resnet18", "efficientnetb0")
    }


@pytest.fixture(scope="session")
def fig7_results(fig6_results):
    """Fig. 7 scatter: generic vs DP-optimized across the HW grid."""
    out = {}
    for model, limit in (("resnet18", None), ("efficientnetb0", 64)):
        dp_points = []
        from repro.config import default_arch, with_flit_bytes, with_mg_size
        from repro.explore import FLIT_SIZES, MG_SIZES, evaluate_fast

        for flit in FLIT_SIZES:
            for mg in MG_SIZES:
                arch = with_flit_bytes(with_mg_size(default_arch(), mg), flit)
                dp_points.append(
                    evaluate_fast(
                        model, arch, "dp", INPUT_SIZE, NUM_CLASSES,
                        closure_limit=limit,
                    )
                )
        out[model] = {"generic": fig6_results[model], "dp": dp_points}
    return out
