"""Shared, session-cached computations for the benchmark harness.

The figure benchmarks share expensive sweeps (Fig. 5's strategy grid,
Fig. 6/7's architecture sweeps); session fixtures compute each once,
going through the design-space exploration engine (:mod:`repro.explore`).

Two environment variables tune how the sweeps execute without changing
their results:

- ``REPRO_BENCH_WORKERS``: process-pool size for the sweeps (default 1,
  i.e. serial in-process);
- ``REPRO_BENCH_CACHE``: directory of an on-disk result cache.  When set,
  re-running the benchmarks serves already-evaluated points from disk
  (re-anchored benchmark runs finish in seconds instead of minutes).
"""

import os

import pytest

from repro.explore import (
    FLIT_SIZES,
    MG_SIZES,
    SweepSpec,
    run_sweep,
    strategy_comparison,
)
from repro.explore_cache import ResultCache

#: Paper-scale resolution used by the figure sweeps (fast analytic model).
INPUT_SIZE = 224
NUM_CLASSES = 1000


def _bench_workers():
    return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def _bench_cache():
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    return ResultCache(cache_dir) if cache_dir else None


@pytest.fixture(scope="session")
def fig5_results():
    """Fig. 5 grid: 4 models x 3 strategies at the default architecture."""
    return strategy_comparison(
        ["resnet18", "vgg19", "mobilenetv2", "efficientnetb0"],
        input_size=INPUT_SIZE,
        num_classes=NUM_CLASSES,
        workers=_bench_workers(),
        cache=_bench_cache(),
    )


@pytest.fixture(scope="session")
def fig6_results():
    """Fig. 6 sweep: MG size x flit width, generic mapping."""
    spec = SweepSpec(
        models=("resnet18", "efficientnetb0"),
        strategies=("generic",),
        mg_sizes=MG_SIZES,
        flit_sizes=FLIT_SIZES,
        input_sizes=(INPUT_SIZE,),
        num_classes=NUM_CLASSES,
    )
    result = run_sweep(spec, workers=_bench_workers(), cache=_bench_cache())
    return result.by_model()


@pytest.fixture(scope="session")
def fig7_results(fig6_results):
    """Fig. 7 scatter: generic vs DP-optimized across the HW grid."""
    spec = SweepSpec(
        models=("resnet18", "efficientnetb0"),
        strategies=("dp",),
        mg_sizes=MG_SIZES,
        flit_sizes=FLIT_SIZES,
        input_sizes=(INPUT_SIZE,),
        num_classes=NUM_CLASSES,
        closure_limit={"resnet18": None, "efficientnetb0": 64},
    )
    result = run_sweep(spec, workers=_bench_workers(), cache=_bench_cache())
    dp_by_model = result.by_model()
    return {
        model: {"generic": fig6_results[model], "dp": dp_by_model[model]}
        for model in spec.models
    }
