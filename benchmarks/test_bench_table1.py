"""Table I: the default architecture parameters, and compile throughput.

Regenerates the paper's Table I from the preset and benchmarks the
end-to-end compilation flow on it.
"""

from repro.compiler import compile_graph
from repro.config import default_arch
from repro.graph.models import get_model


def test_bench_table1(benchmark):
    arch = default_arch()

    # --- regenerate Table I ---------------------------------------------
    chip, core = arch.chip, arch.chip.core
    macro = core.cim_unit.macro_group.macro
    rows = [
        ("Core num.", chip.num_cores, "CIM comp. unit (#MG)",
         core.cim_unit.num_macro_groups, "Macro",
         f"{macro.rows}x{macro.cols}"),
        ("NoC flit size", f"{chip.noc.flit_bytes} Byte", "Macro group (#macro)",
         core.cim_unit.macro_group.num_macros, "Element",
         f"{macro.element_rows}x{macro.element_bits}"),
        ("Global mem.", f"{chip.global_memory.size_bytes >> 20} MB",
         "Local mem.", f"{core.local_memory.size_bytes >> 10} KB", "", ""),
    ]
    print("\nTable I: architecture parameters of the default architecture")
    print(f"{'Chip level':<24s} {'Core level':<32s} {'Unit level':<18s}")
    for a, b, c, d, e, f in rows:
        print(f"{a:<14s} {str(b):<9s} {c:<24s} {str(d):<7s} {e:<8s} {str(f):<10s}")

    # --- paper values asserted -------------------------------------------
    assert chip.num_cores == 64
    assert chip.noc.flit_bytes == 8
    assert chip.global_memory.size_bytes == 16 << 20
    assert core.cim_unit.num_macro_groups == 16
    assert core.cim_unit.macro_group.num_macros == 8
    assert core.local_memory.size_bytes == 512 << 10
    assert (macro.rows, macro.cols) == (512, 64)
    assert (macro.element_rows, macro.element_bits) == (32, 8)

    # --- benchmark: full compilation on the Table I chip ------------------
    graph = get_model("resnet18", input_size=32, num_classes=100)
    compiled = benchmark.pedantic(
        lambda: compile_graph(graph, arch, "generic"), rounds=1, iterations=1
    )
    assert compiled.total_instructions() > 0
