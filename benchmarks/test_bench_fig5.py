"""Fig. 5: normalized speed and energy of the three compilation strategies.

Paper claims reproduced (shape, not absolute numbers):

- speed ordering   : DP-based >= operator duplication >= generic, per model;
- energy ordering  : DP-based total energy <= generic for every model;
- headline         : "up to 2.8x speedup and 61.7% energy reduction" -- the
  *maximum* speedup across the grid must land in the few-x range and the
  maximum energy reduction must be substantial (>30%);
- the DP advantage is most pronounced on a compact model (MobileNetV2 or
  EfficientNetB0), whose small weight footprints starve the conventional
  partition of duplication opportunities.
"""

from repro.explore import evaluate_fast

_STRATS = ("generic", "duplication", "dp")


def test_bench_fig5(benchmark, fig5_results):
    results = fig5_results

    print("\nFig. 5: normalized speed / normalized energy (generic = 1.0)")
    print(f"{'model':<16s}" + "".join(f"{s:>22s}" for s in _STRATS))
    speedups, reductions = {}, {}
    for model, by_strat in results.items():
        base = by_strat["generic"].report
        cells = []
        for strat in _STRATS:
            r = by_strat[strat].report
            speed = base.cycles / r.cycles
            energy = r.total_energy_mj / base.total_energy_mj
            cells.append(f"{speed:7.2f}x /{energy:6.2f}E")
            if strat == "dp":
                speedups[model] = speed
                reductions[model] = 1.0 - energy
        print(f"{model:<16s}" + "".join(f"{c:>22s}" for c in cells))
    print(
        f"max DP speedup: {max(speedups.values()):.2f}x   "
        f"max DP energy reduction: {100 * max(reductions.values()):.1f}%   "
        f"(paper: 2.8x, 61.7%)"
    )

    # --- shape assertions ---------------------------------------------------
    for model, by_strat in results.items():
        generic = by_strat["generic"].report
        dup = by_strat["duplication"].report
        dp = by_strat["dp"].report
        assert dp.cycles <= dup.cycles <= generic.cycles, (
            f"{model}: strategy speed ordering violated"
        )
        assert dp.total_energy_pj <= generic.total_energy_pj * 1.01, (
            f"{model}: DP should not cost more energy than generic"
        )
    assert 1.5 <= max(speedups.values()) <= 6.0
    assert max(reductions.values()) >= 0.30
    compact_best = max(speedups, key=speedups.get)
    assert compact_best in ("mobilenetv2", "efficientnetb0"), (
        f"largest DP speedup should be on a compact model, got {compact_best}"
    )

    # --- benchmark: one full DP plan+analysis ---------------------------------
    benchmark.pedantic(
        lambda: evaluate_fast("resnet18", strategy="dp", input_size=224),
        rounds=1, iterations=1,
    )
