"""Ablations of the compiler's central design choices (Algorithm 1).

1. Dependency-closure enumeration vs prefix-only fallback: the full
   closure set can only improve (never worsen) the DP objective.
2. Duplication inside the DP: disabling weight duplication degrades the
   plan, isolating how much of the gain comes from duplication vs stage
   placement.
3. Strategy cost on the compile side: static instruction footprints.
"""

from repro.compiler import (
    CostModel,
    build_geometries,
    compile_graph,
    condense,
    dp_partition,
)
from repro.config import default_arch
from repro.graph.models import get_model


def _prep(model, input_size=64):
    graph = get_model(model, input_size=input_size, num_classes=100)
    arch = default_arch()
    cgraph = condense(graph)
    geoms = build_geometries(cgraph, arch)
    return cgraph, geoms, arch


def test_bench_ablation_closure_enumeration(benchmark):
    cgraph, geoms, arch = _prep("resnet18")
    cm = CostModel(arch)
    full = dp_partition(cgraph, geoms, arch, cm)
    prefix_only = dp_partition(cgraph, geoms, arch, cm, closure_limit=1)
    print(
        f"\nclosure ablation (resnet18): full-DP cost {full.total_cost:,.0f} "
        f"({len(full.stages)} stages) vs prefix-only "
        f"{prefix_only.total_cost:,.0f} ({len(prefix_only.stages)} stages)"
    )
    assert full.total_cost <= prefix_only.total_cost + 1e-9
    benchmark.pedantic(
        lambda: dp_partition(cgraph, geoms, arch, cm), rounds=1, iterations=1
    )


def test_bench_ablation_duplication(benchmark):
    cgraph, geoms, arch = _prep("resnet18")
    cm = CostModel(arch)
    with_dup = dp_partition(cgraph, geoms, arch, cm, duplicate=True)
    without = dp_partition(cgraph, geoms, arch, cm, duplicate=False)
    print(
        f"\nduplication ablation (resnet18): with {with_dup.total_cost:,.0f}"
        f" vs without {without.total_cost:,.0f} "
        f"({without.total_cost / with_dup.total_cost:.2f}x worse)"
    )
    assert with_dup.total_cost <= without.total_cost
    benchmark.pedantic(
        lambda: dp_partition(cgraph, geoms, arch, cm, duplicate=False),
        rounds=1, iterations=1,
    )


def test_bench_ablation_codegen_footprint(benchmark):
    arch = default_arch()
    graph = get_model("resnet18", input_size=32, num_classes=100)
    rows = []
    for strategy in ("generic", "duplication", "dp"):
        compiled = compile_graph(graph, arch, strategy)
        rows.append((strategy, compiled.total_instructions(),
                     compiled.plan.num_stages))
    print("\ncodegen footprint (resnet18@32):")
    for strategy, instructions, stages in rows:
        print(f"  {strategy:<12s}: {instructions:>9,} static instructions, "
              f"{stages} stages")
    assert all(count > 0 for _, count, _ in rows)
    benchmark.pedantic(
        lambda: compile_graph(graph, arch, "generic"), rounds=1, iterations=1
    )
