"""Fig. 6: energy breakdown and throughput vs MG size and NoC bandwidth.

Paper claims reproduced (shape):

- ResNet18: throughput improves as MG size grows from 4 to 16; compute-unit
  energy is the dominant component; doubling the flit size boosts
  inter-layer pipeline throughput measurably.
- EfficientNetB0: MG scaling yields only modest throughput gains
  (saturation); the NoC is a dominant energy component at small MG sizes
  (paper: up to 55.4% of the tracked components).

The breakdown covers the paper's three plotted components (local memory /
compute units / NoC), as in the figure's legend.
"""

from repro.explore import evaluate_fast


def _component_shares(point):
    g = point.report.grouped_energy_mj()
    tracked = g["local_mem"] + g["compute"] + g["noc"]
    return {k: g[k] / tracked for k in ("local_mem", "compute", "noc")}, tracked


def test_bench_fig6(benchmark, fig6_results):
    print("\nFig. 6: energy breakdown + throughput (generic mapping)")
    header = (
        f"{'model':<16s}{'MG':>4s}{'flit':>6s}{'TOPS':>8s}{'E(comp) mJ':>12s}"
        f"{'local%':>8s}{'comp%':>8s}{'noc%':>8s}"
    )
    print(header)
    for model, points in fig6_results.items():
        for pt in points:
            shares, tracked = _component_shares(pt)
            print(
                f"{model:<16s}{pt.mg_size:>4d}{pt.flit_bytes:>6d}"
                f"{pt.tops:>8.2f}{tracked:>12.3f}"
                f"{100 * shares['local_mem']:>8.1f}"
                f"{100 * shares['compute']:>8.1f}"
                f"{100 * shares['noc']:>8.1f}"
            )

    resnet = {(p.mg_size, p.flit_bytes): p for p in fig6_results["resnet18"]}
    effnet = {(p.mg_size, p.flit_bytes): p for p in fig6_results["efficientnetb0"]}

    # ResNet18: MG scaling helps substantially (4 -> 16 at either flit width)
    for flit in (8, 16):
        gain = resnet[(16, flit)].tops / resnet[(4, flit)].tops
        assert gain > 1.15, f"ResNet18 MG scaling gain {gain:.2f} too small"
    # ResNet18: compute dominates its tracked energy at the default point
    shares, _ = _component_shares(resnet[(8, 8)])
    assert shares["compute"] > shares["noc"]
    assert shares["compute"] > shares["local_mem"]
    # ResNet18: wider flits raise pipeline throughput
    assert resnet[(8, 16)].tops > resnet[(8, 8)].tops

    # EfficientNetB0: MG scaling saturates (much smaller relative gain)
    eff_gain = effnet[(16, 8)].tops / effnet[(4, 8)].tops
    res_gain = resnet[(16, 8)].tops / resnet[(4, 8)].tops
    assert eff_gain < res_gain
    assert eff_gain < 1.25, f"EfficientNetB0 gain {eff_gain:.2f} should saturate"
    # EfficientNetB0: NoC dominates the tracked energy at small MG
    shares, _ = _component_shares(effnet[(4, 16)])
    assert shares["noc"] > 0.40, (
        f"EfficientNetB0 NoC share {shares['noc']:.2f} (paper: up to 55.4%)"
    )

    benchmark.pedantic(
        lambda: evaluate_fast("efficientnetb0", strategy="generic",
                              input_size=224),
        rounds=1, iterations=1,
    )
